#pragma once
/// \file decompositions.hpp
/// Matrix factorizations needed by the statistical pipeline:
///  - Cholesky (multivariate-normal sampling, SPD solves, Mahalanobis),
///  - LU with partial pivoting (general square solves, determinants),
///  - Householder QR (least-squares fits inside MARS),
///  - cyclic Jacobi symmetric eigendecomposition (PCA).

#include "linalg/matrix.hpp"

namespace htd::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
///
/// `L` satisfies `A = L L^T`. Construction throws std::invalid_argument when
/// the input is not square/symmetric and std::domain_error when it is not
/// positive definite (to within a small pivot tolerance).
class Cholesky {
public:
    /// Factor `a`; see class comment for error behaviour.
    explicit Cholesky(const Matrix& a);

    /// The lower-triangular factor L.
    [[nodiscard]] const Matrix& l() const noexcept { return l_; }

    /// Solve A x = b via forward/back substitution.
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// Solve L y = b (forward substitution only).
    [[nodiscard]] Vector solve_lower(const Vector& b) const;

    /// log(det(A)) = 2 sum log(L_ii); cheap because the factor is triangular.
    [[nodiscard]] double log_determinant() const noexcept;

private:
    Matrix l_;
};

/// LU factorization with partial pivoting: P A = L U.
class Lu {
public:
    /// Factor the square matrix `a`; throws std::invalid_argument when not
    /// square and std::domain_error when (numerically) singular.
    explicit Lu(const Matrix& a);

    /// Solve A x = b.
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// Solve A X = B column-by-column.
    [[nodiscard]] Matrix solve(const Matrix& b) const;

    /// Determinant of A (product of U's diagonal times pivot sign).
    [[nodiscard]] double determinant() const noexcept;

    /// Inverse of A; prefer solve() when only products are needed.
    [[nodiscard]] Matrix inverse() const;

private:
    Matrix lu_;                    // packed L (unit diagonal) and U
    std::vector<std::size_t> piv_; // row permutation
    int pivot_sign_ = 1;
};

/// Householder QR factorization A = Q R for m >= n (tall) matrices.
class Qr {
public:
    /// Factor `a`; throws std::invalid_argument when rows < cols.
    explicit Qr(const Matrix& a);

    /// Least-squares solution of min ||A x - b||_2. Throws std::domain_error
    /// when A is rank deficient (zero diagonal in R).
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// The upper-triangular factor R (n x n).
    [[nodiscard]] Matrix r() const;

    /// True if all diagonal entries of R exceed `tol` in magnitude.
    [[nodiscard]] bool full_rank(double tol = 1e-12) const noexcept;

private:
    Matrix qr_;            // Householder vectors below diagonal, R on/above
    Vector rdiag_;         // diagonal of R
};

/// Result of a symmetric eigendecomposition: A = V diag(lambda) V^T.
/// Eigenvalues are sorted in descending order; `vectors.col(k)` is the
/// eigenvector for `values[k]`.
struct EigenResult {
    Vector values;   ///< eigenvalues, descending
    Matrix vectors;  ///< orthonormal eigenvectors as columns
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Robust and accurate for the small (<= a few dozen dims) covariance
/// matrices this library works with. Throws std::invalid_argument when the
/// input is not symmetric.
[[nodiscard]] EigenResult symmetric_eigen(const Matrix& a,
                                          std::size_t max_sweeps = 64,
                                          double tol = 1e-13);

/// Solve the SPD system A x = b via Cholesky, adding `ridge` * I when the
/// plain factorization fails (used by kernel methods whose Gram matrices are
/// only semi-definite in exact arithmetic).
[[nodiscard]] Vector solve_spd_ridge(const Matrix& a, const Vector& b,
                                     double ridge = 1e-10);

/// Thin singular value decomposition A = U diag(s) V^T for m >= n matrices,
/// computed by one-sided Jacobi rotations (accurate for the small, possibly
/// ill-conditioned design and covariance matrices this library builds).
/// Singular values are sorted descending; U is m x n with orthonormal
/// columns, V is n x n orthogonal.
struct SvdResult {
    Matrix u;        ///< m x n, orthonormal columns
    Vector values;   ///< n singular values, descending, >= 0
    Matrix v;        ///< n x n, orthogonal
};

/// One-sided Jacobi SVD; throws std::invalid_argument when rows < cols.
[[nodiscard]] SvdResult singular_values(const Matrix& a,
                                        std::size_t max_sweeps = 64,
                                        double tol = 1e-13);

/// Nearest (eigenvalue-clipped) correlation matrix: eigenvalues below
/// `min_eigenvalue` are raised to it, the matrix is reassembled and its
/// diagonal renormalized to exactly 1. Hand-authored correlation matrices
/// are frequently slightly indefinite; this is the standard repair (Higham,
/// 2002, simplified). Throws std::invalid_argument for non-square/
/// non-symmetric input or a non-positive floor.
[[nodiscard]] Matrix nearest_correlation_matrix(const Matrix& corr,
                                                double min_eigenvalue = 1e-4);

}  // namespace htd::linalg
