#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace htd::linalg {

namespace {

void require(bool cond, const char* what) {
    if (!cond) throw std::invalid_argument(what);
}

}  // namespace

// --- Vector ----------------------------------------------------------------

Vector& Vector::operator+=(const Vector& rhs) {
    require(size() == rhs.size(), "Vector::operator+=: dimension mismatch");
    for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
    require(size() == rhs.size(), "Vector::operator-=: dimension mismatch");
    for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Vector& Vector::operator*=(double s) noexcept {
    for (double& v : data_) v *= s;
    return *this;
}

Vector& Vector::operator/=(double s) {
    require(s != 0.0, "Vector::operator/=: division by zero");
    for (double& v : data_) v /= s;
    return *this;
}

double Vector::norm() const noexcept {
    double acc = 0.0;
    for (double v : data_) acc += v * v;
    return std::sqrt(acc);
}

double Vector::sum() const noexcept {
    double acc = 0.0;
    for (double v : data_) acc += v;
    return acc;
}

double Vector::mean() const {
    require(!empty(), "Vector::mean: empty vector");
    return sum() / static_cast<double>(size());
}

double Vector::min() const {
    require(!empty(), "Vector::min: empty vector");
    return *std::min_element(data_.begin(), data_.end());
}

double Vector::max() const {
    require(!empty(), "Vector::max: empty vector");
    return *std::max_element(data_.begin(), data_.end());
}

std::string Vector::str() const {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < size(); ++i) {
        if (i > 0) os << ", ";
        os << data_[i];
    }
    os << ']';
    return os.str();
}

double dot(const Vector& a, const Vector& b) {
    require(a.size() == b.size(), "dot: dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double squared_distance(const Vector& a, const Vector& b) {
    require(a.size() == b.size(), "squared_distance: dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

// --- Matrix ------------------------------------------------------------------

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : init) {
        require(r.size() == cols_, "Matrix: ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::from_rows(std::span<const Vector> rows) {
    Matrix m;
    for (const Vector& r : rows) m.append_row(r);
    return m;
}

Matrix Matrix::diagonal(const Vector& d) {
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("Matrix::row");
    return Vector(row_span(r));
}

Vector Matrix::col(std::size_t c) const {
    if (c >= cols_) throw std::out_of_range("Matrix::col");
    Vector v(rows_);
    for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
    return v;
}

std::span<const double> Matrix::row_span(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("Matrix::row_span");
    return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row_span(std::size_t r) {
    if (r >= rows_) throw std::out_of_range("Matrix::row_span");
    return {data_.data() + r * cols_, cols_};
}

void Matrix::set_row(std::size_t r, const Vector& v) {
    if (r >= rows_) throw std::out_of_range("Matrix::set_row");
    require(v.size() == cols_, "Matrix::set_row: width mismatch");
    std::copy(v.begin(), v.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::set_col(std::size_t c, const Vector& v) {
    if (c >= cols_) throw std::out_of_range("Matrix::set_col");
    require(v.size() == rows_, "Matrix::set_col: height mismatch");
    for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void Matrix::append_row(const Vector& v) {
    if (rows_ == 0 && cols_ == 0) {
        cols_ = v.size();
    } else {
        require(v.size() == cols_, "Matrix::append_row: width mismatch");
    }
    data_.insert(data_.end(), v.begin(), v.end());
    ++rows_;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0,
                     std::size_t nr, std::size_t nc) const {
    if (r0 + nr > rows_ || c0 + nc > cols_) throw std::out_of_range("Matrix::block");
    Matrix b(nr, nc);
    for (std::size_t r = 0; r < nr; ++r)
        for (std::size_t c = 0; c < nc; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
    return b;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
    require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator-=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
    for (double& v : data_) v *= s;
    return *this;
}

Matrix Matrix::matmul(const Matrix& rhs) const {
    require(cols_ == rhs.rows_, "Matrix::matmul: inner dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    // i-k-j loop order keeps both inner accesses sequential in memory.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0) continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j) {
                out(i, j) += a * rhs(k, j);
            }
        }
    }
    return out;
}

Vector Matrix::matvec(const Vector& v) const {
    require(cols_ == v.size(), "Matrix::matvec: dimension mismatch");
    Vector out(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
        out[i] = acc;
    }
    return out;
}

double Matrix::frobenius_norm() const noexcept {
    double acc = 0.0;
    for (double v : data_) acc += v * v;
    return std::sqrt(acc);
}

double Matrix::max_abs() const noexcept {
    double acc = 0.0;
    for (double v : data_) acc = std::max(acc, std::abs(v));
    return acc;
}

bool Matrix::is_symmetric(double tol) const noexcept {
    if (rows_ != cols_) return false;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = r + 1; c < cols_; ++c)
            if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    return true;
}

std::string Matrix::str() const {
    std::ostringstream os;
    os << std::setprecision(6);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << (r == 0 ? "[[" : " [");
        for (std::size_t c = 0; c < cols_; ++c) {
            if (c > 0) os << ", ";
            os << std::setw(10) << (*this)(r, c);
        }
        os << (r + 1 == rows_ ? "]]" : "]\n");
    }
    return os.str();
}

Matrix matmul(const Matrix& a, const Matrix& b) { return a.matmul(b); }

Matrix outer(const Vector& a, const Vector& b) {
    Matrix m(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
    return m;
}

}  // namespace htd::linalg
