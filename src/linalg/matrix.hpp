#pragma once
/// \file matrix.hpp
/// Dense, row-major, dynamically sized matrix and vector types used throughout
/// the library. The implementation favours clarity and numerical robustness
/// over raw speed: every dataset in the DAC'14 pipeline is at most a few
/// hundred thousand rows by six columns, so cache-friendly row-major storage
/// plus straightforward loops is more than adequate.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace htd::linalg {

/// A dynamically sized column vector of doubles.
///
/// `Vector` is a thin value type: copyable, movable, comparable. Element
/// access is bounds-checked in debug builds via `at()`; `operator[]` is
/// unchecked for hot loops.
class Vector {
public:
    Vector() = default;

    /// Construct a zero vector of dimension `n`.
    explicit Vector(std::size_t n) : data_(n, 0.0) {}

    /// Construct a vector of dimension `n` with every element set to `fill`.
    Vector(std::size_t n, double fill) : data_(n, fill) {}

    /// Construct from an explicit element list, e.g. `Vector{1.0, 2.0}`.
    Vector(std::initializer_list<double> init) : data_(init) {}

    /// Construct by copying a span of doubles.
    explicit Vector(std::span<const double> values)
        : data_(values.begin(), values.end()) {}

    /// Number of elements.
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

    /// True when the vector has zero elements.
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Unchecked element access.
    [[nodiscard]] double operator[](std::size_t i) const noexcept { return data_[i]; }
    [[nodiscard]] double& operator[](std::size_t i) noexcept { return data_[i]; }

    /// Bounds-checked element access; throws std::out_of_range.
    [[nodiscard]] double at(std::size_t i) const { return data_.at(i); }
    [[nodiscard]] double& at(std::size_t i) { return data_.at(i); }

    /// Raw contiguous storage.
    [[nodiscard]] const double* data() const noexcept { return data_.data(); }
    [[nodiscard]] double* data() noexcept { return data_.data(); }

    /// View of the underlying storage.
    [[nodiscard]] std::span<const double> span() const noexcept { return data_; }
    [[nodiscard]] std::span<double> span() noexcept { return data_; }

    [[nodiscard]] auto begin() noexcept { return data_.begin(); }
    [[nodiscard]] auto end() noexcept { return data_.end(); }
    [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
    [[nodiscard]] auto end() const noexcept { return data_.end(); }

    /// Resize, zero-filling any new elements.
    void resize(std::size_t n) { data_.resize(n, 0.0); }

    /// Append an element.
    void push_back(double v) { data_.push_back(v); }

    // --- arithmetic -------------------------------------------------------

    Vector& operator+=(const Vector& rhs);
    Vector& operator-=(const Vector& rhs);
    Vector& operator*=(double s) noexcept;
    Vector& operator/=(double s);

    friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
    friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
    friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
    friend Vector operator*(double s, Vector rhs) { return rhs *= s; }
    friend Vector operator/(Vector lhs, double s) { return lhs /= s; }

    friend bool operator==(const Vector&, const Vector&) = default;

    /// Euclidean (L2) norm.
    [[nodiscard]] double norm() const noexcept;

    /// Sum of all elements.
    [[nodiscard]] double sum() const noexcept;

    /// Arithmetic mean; throws std::invalid_argument on an empty vector.
    [[nodiscard]] double mean() const;

    /// Smallest / largest element; throw std::invalid_argument when empty.
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

    /// Human-readable rendering, e.g. "[1.0, 2.0, 3.0]".
    [[nodiscard]] std::string str() const;

private:
    std::vector<double> data_;
};

/// Dot product; throws std::invalid_argument on dimension mismatch.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Squared Euclidean distance between two vectors of equal dimension.
[[nodiscard]] double squared_distance(const Vector& a, const Vector& b);

/// A dense row-major matrix of doubles.
///
/// Rows map naturally onto dataset samples: `row(i)` copies sample i out as a
/// `Vector`, while `row_span(i)` gives zero-copy access for hot paths.
class Matrix {
public:
    Matrix() = default;

    /// Construct a zero matrix of shape rows x cols.
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    /// Construct a rows x cols matrix with every element set to `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Construct from nested initializer lists; throws std::invalid_argument
    /// if the rows are ragged.
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    /// The n x n identity matrix.
    [[nodiscard]] static Matrix identity(std::size_t n);

    /// Build a matrix from a list of equally sized row vectors.
    [[nodiscard]] static Matrix from_rows(std::span<const Vector> rows);

    /// Diagonal matrix with the given diagonal entries.
    [[nodiscard]] static Matrix diagonal(const Vector& d);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Unchecked element access.
    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }

    /// Bounds-checked element access; throws std::out_of_range.
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;
    [[nodiscard]] double& at(std::size_t r, std::size_t c);

    /// Copy of row r as a Vector.
    [[nodiscard]] Vector row(std::size_t r) const;

    /// Copy of column c as a Vector.
    [[nodiscard]] Vector col(std::size_t c) const;

    /// Zero-copy view of row r.
    [[nodiscard]] std::span<const double> row_span(std::size_t r) const;
    [[nodiscard]] std::span<double> row_span(std::size_t r);

    /// Overwrite row r with `v`; throws std::invalid_argument on mismatch.
    void set_row(std::size_t r, const Vector& v);

    /// Overwrite column c with `v`; throws std::invalid_argument on mismatch.
    void set_col(std::size_t c, const Vector& v);

    /// Append a row; throws std::invalid_argument if the width differs
    /// (appending to an empty matrix sets the width).
    void append_row(const Vector& v);

    /// Matrix transpose.
    [[nodiscard]] Matrix transposed() const;

    /// Submatrix copy of rows [r0, r0+nr) x cols [c0, c0+nc).
    [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0,
                               std::size_t nr, std::size_t nc) const;

    // --- arithmetic -------------------------------------------------------

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double s) noexcept;

    friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
    friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
    friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
    friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

    friend bool operator==(const Matrix&, const Matrix&) = default;

    /// Matrix-matrix product; throws std::invalid_argument on shape mismatch.
    [[nodiscard]] Matrix matmul(const Matrix& rhs) const;

    /// Matrix-vector product; throws std::invalid_argument on shape mismatch.
    [[nodiscard]] Vector matvec(const Vector& v) const;

    /// Frobenius norm.
    [[nodiscard]] double frobenius_norm() const noexcept;

    /// Maximum absolute element.
    [[nodiscard]] double max_abs() const noexcept;

    /// True if square and symmetric to within `tol` (absolute).
    [[nodiscard]] bool is_symmetric(double tol = 1e-12) const noexcept;

    /// Human-readable rendering with aligned columns.
    [[nodiscard]] std::string str() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// C = A * B convenience wrapper around Matrix::matmul.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// Outer product a b^T.
[[nodiscard]] Matrix outer(const Vector& a, const Vector& b);

}  // namespace htd::linalg
