#include "silicon/fab.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace htd::silicon {

std::size_t FabricatedLot::chip_count() const {
    std::vector<std::size_t> ids;
    ids.reserve(devices.size());
    for (const Device& dev : devices) ids.push_back(dev.chip_id);
    std::sort(ids.begin(), ids.end());
    return static_cast<std::size_t>(
        std::unique(ids.begin(), ids.end()) - ids.begin());
}

double Device::site_radius() const noexcept {
    return std::sqrt(site_x * site_x + site_y * site_y);
}

Fab::Fab(process::ProcessVariationModel silicon_process, Options opts)
    : process_(std::move(silicon_process)), opts_(opts) {
    if (opts_.wafers == 0) throw std::invalid_argument("Fab: zero wafers");
    if (opts_.within_die_fraction < 0.0) {
        throw std::invalid_argument("Fab: negative within-die fraction");
    }
    if (opts_.radial_gradient_sigma < 0.0) {
        throw std::invalid_argument("Fab: negative radial gradient");
    }
}

FabricatedLot Fab::fabricate_lot(rng::Rng& rng, std::size_t n_chips) const {
    if (n_chips == 0) throw std::invalid_argument("Fab::fabricate_lot: zero chips");

    FabricatedLot lot;
    lot.lot_offset = process_.sample_lot_offset(rng);
    lot.wafer_offsets.reserve(opts_.wafers);
    for (std::size_t w = 0; w < opts_.wafers; ++w) {
        lot.wafer_offsets.push_back(process_.sample_wafer_offset(rng));
    }
    lot.chips_per_wafer = (n_chips + opts_.wafers - 1) / opts_.wafers;

    static constexpr trojan::DesignVariant kVersions[] = {
        trojan::DesignVariant::kTrojanFree,
        trojan::DesignVariant::kTrojanAmplitude,
        trojan::DesignVariant::kTrojanFrequency,
    };

    // Radial systematic direction: edge chips lean toward the slow corner.
    const process::ProcessShift radial_dir = process::ProcessShift::slow_corner(1.0);

    lot.devices.reserve(n_chips * 3);
    for (std::size_t chip = 0; chip < n_chips; ++chip) {
        const std::size_t wafer = chip / lot.chips_per_wafer;
        // Sunflower (golden-angle) layout fills the wafer disk uniformly.
        const std::size_t site = chip % lot.chips_per_wafer;
        const double r = std::sqrt((static_cast<double>(site) + 0.5) /
                                   static_cast<double>(lot.chips_per_wafer));
        const double theta = 2.39996322972865332 * static_cast<double>(site);

        process::ProcessPoint die =
            process_.sample_die(rng, lot.lot_offset, lot.wafer_offsets[wafer]);
        if (opts_.radial_gradient_sigma > 0.0) {
            // Zero-mean across the wafer: r^2 averages to 1/2 on the disk.
            const double weight = opts_.radial_gradient_sigma * (r * r - 0.5);
            for (std::size_t i = 0; i < process::kParamCount; ++i) {
                die.values[i] += weight * radial_dir.sigmas[i] * process_.sigma()[i];
            }
        }

        for (const trojan::DesignVariant v : kVersions) {
            Device dev;
            dev.chip_id = chip;
            dev.wafer_id = wafer;
            dev.site_x = r * std::cos(theta);
            dev.site_y = r * std::sin(theta);
            dev.variant = v;
            // Each version occupies its own area of the die: same die-level
            // point plus a small local-mismatch perturbation.
            dev.point = process_.perturb_within_die(rng, die, opts_.within_die_fraction);
            lot.devices.push_back(dev);
        }
    }
    return lot;
}

}  // namespace htd::silicon
