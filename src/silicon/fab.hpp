#pragma once
/// \file fab.hpp
/// Virtual fabrication of the experiment's silicon: a lot of chips, each
/// hosting the Trojan-free design plus the two Trojan-infested versions on
/// the same die (exactly the paper's 40 chips x 3 versions = 120 devices).
/// The fab draws hierarchical process variation from the *silicon* process
/// model — the foundry operating point that has drifted away from the
/// trusted Spice model.

#include <cstddef>
#include <utility>
#include <vector>

#include "process/variation_model.hpp"
#include "rng/rng.hpp"
#include "trojan/trojan.hpp"

namespace htd::silicon {

/// One fabricated device instance: a design version on a specific chip.
struct Device {
    std::size_t chip_id = 0;
    std::size_t wafer_id = 0;
    double site_x = 0.0;  ///< chip position on the wafer (unit disk)
    double site_y = 0.0;
    trojan::DesignVariant variant = trojan::DesignVariant::kTrojanFree;
    process::ProcessPoint point;  ///< version-local process parameters

    /// Normalized distance of the chip site from the wafer center.
    [[nodiscard]] double site_radius() const noexcept;
};

/// A fabricated lot: devices grouped per chip, with the shared offsets kept
/// for diagnostics.
struct FabricatedLot {
    std::vector<Device> devices;        ///< chips * versions entries
    linalg::Vector lot_offset;          ///< shared lot-level parameter offset
    std::vector<linalg::Vector> wafer_offsets;
    std::size_t chips_per_wafer = 0;

    /// Number of distinct chips in the lot, derived from the device list.
    /// Not a divide-by-versions shortcut: a lot that was filtered (e.g. by
    /// measurement quarantine) no longer carries every version of every chip.
    [[nodiscard]] std::size_t chip_count() const;
};

/// The virtual foundry.
class Fab {
public:
    struct Options {
        std::size_t wafers = 2;               ///< wafers the lot is spread over
        double within_die_fraction = 0.15;    ///< version mismatch scale

        /// Strength of the radial across-wafer systematic gradient, in
        /// process sigmas from wafer center to edge (0 disables). Real
        /// wafers show radial signatures from deposition/anneal uniformity;
        /// chips near the edge lean toward the slow corner.
        double radial_gradient_sigma = 0.3;
    };

    /// `silicon_process` is the foundry's actual operating point.
    explicit Fab(process::ProcessVariationModel silicon_process)
        : Fab(std::move(silicon_process), Options{}) {}
    Fab(process::ProcessVariationModel silicon_process, Options opts);

    /// Fabricate one lot of `n_chips`, each hosting the three design
    /// versions. Device order: chip 0 {TF, TI-amp, TI-freq}, chip 1 {...}.
    /// Throws std::invalid_argument when n_chips == 0.
    [[nodiscard]] FabricatedLot fabricate_lot(rng::Rng& rng, std::size_t n_chips) const;

    [[nodiscard]] const process::ProcessVariationModel& process_model() const noexcept {
        return process_;
    }

private:
    process::ProcessVariationModel process_;
    Options opts_;
};

}  // namespace htd::silicon
