#pragma once
/// \file fault_injector.hpp
/// Seeded measurement-fault injection. `FaultyBench` decorates any
/// `MeasurementSource` with the classic tester failure modes:
///
///  - *probe-contact dropouts* — a reading is lost and comes back NaN (or
///    rails to +/-Inf when the front-end saturates instead),
///  - *stuck channels* — an ADC latch repeats the previous device's reading,
///  - *spike outliers* — isolated gross errors far outside the population,
///  - *per-channel gain drift* — slow calibration drift accumulating over
///    the measurement sequence,
///  - *retest jitter* — a re-measured device reads slightly differently
///    than its first contact (socket wear, thermal state).
///
/// Faults are drawn from a dedicated stream seeded by `FaultModel::seed`,
/// independent of the measurement-noise stream passed by the caller, so a
/// sweep over fault rates perturbs the same measurements the clean bench
/// would produce. The decorator is the adversary the hardened ingestion
/// layer (core/ingest.hpp) is tested against, and `bench_fault_sweep`
/// tracks the detection metrics' degradation under it.

#include <cstdint>
#include <unordered_map>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "silicon/bench_measure.hpp"

namespace htd::silicon {

/// Fault rates and magnitudes of a FaultyBench. All rates are per-element
/// probabilities in [0, 1]; a default-constructed model injects nothing.
struct FaultModel {
    /// Probability a reading is lost to probe-contact failure.
    double nan_dropout_rate = 0.0;

    /// Fraction of dropouts that rail to +/-Inf instead of reading NaN.
    double inf_fraction = 0.25;

    /// Probability a channel latches and repeats the previous device's
    /// reading on that channel (no effect on the first device measured).
    double stuck_rate = 0.0;

    /// Probability of an isolated spike outlier.
    double spike_rate = 0.0;

    /// Spike size: added in dB on fingerprints; on PCMs the reading scales
    /// by (1 +/- magnitude). Sign is random per spike.
    double spike_magnitude = 10.0;

    /// Per-channel gain drift accumulated per device measured: additive dB
    /// per device on fingerprints, relative per device on PCMs, with a fixed
    /// random sign per channel.
    double gain_drift_per_device = 0.0;

    /// Extra whole-device offset (1-sigma) applied when a device is measured
    /// again: dB on fingerprints, relative on PCMs.
    double retest_jitter_fraction = 0.0;

    /// Seed of the dedicated fault stream.
    std::uint64_t seed = 0xfa0175eedULL;

    /// Throws std::invalid_argument when a rate is outside [0, 1] or a
    /// magnitude is negative.
    void validate() const;
};

/// Counters of the faults actually injected and the bench activity seen.
struct FaultStats {
    std::size_t measurements = 0;   ///< vectors measured (PCM + fingerprint)
    std::size_t remeasures = 0;     ///< vectors measured again for a retry
    std::size_t nan_injected = 0;
    std::size_t inf_injected = 0;
    std::size_t stuck_injected = 0;
    std::size_t spikes_injected = 0;

    /// Faulted readings of any kind.
    [[nodiscard]] std::size_t total_faults() const noexcept {
        return nan_injected + inf_injected + stuck_injected + spikes_injected;
    }
};

/// Fault-injecting decorator over a measurement source.
///
/// The decorator keeps instrument state (stuck-channel latches, the drift
/// clock, per-device measure counts) in mutable members so it satisfies the
/// const `MeasurementSource` interface; it is not thread-safe, matching the
/// single-probe tester it models.
class FaultyBench : public MeasurementSource {
public:
    /// Decorates `inner`, which is kept by reference and must outlive the
    /// FaultyBench. Throws std::invalid_argument on an invalid model.
    FaultyBench(const MeasurementSource& inner, FaultModel model);

    [[nodiscard]] linalg::Vector measure_pcm(const Device& device,
                                             rng::Rng& rng) const override;
    [[nodiscard]] linalg::Vector measure_fingerprint(const Device& device,
                                                     rng::Rng& rng) const override;

    [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const FaultModel& model() const noexcept { return model_; }

    /// Clear stats, latches, drift clocks, measure counts and re-seed the
    /// fault stream, as if the bench had just been powered on.
    void reset();

private:
    enum class Kind { kPcm, kFingerprint };

    void apply_faults(linalg::Vector& reading, Kind kind, const Device& device) const;

    const MeasurementSource& inner_;
    FaultModel model_;
    mutable rng::Rng fault_rng_;
    mutable FaultStats stats_{};
    mutable linalg::Vector latch_pcm_;       ///< previous device's PCM readings
    mutable linalg::Vector latch_fp_;        ///< previous device's fingerprints
    mutable linalg::Vector drift_dir_pcm_;   ///< fixed +/-1 drift sign per channel
    mutable linalg::Vector drift_dir_fp_;
    mutable std::size_t sequence_pcm_ = 0;   ///< drift clock (devices measured)
    mutable std::size_t sequence_fp_ = 0;
    mutable std::unordered_map<std::uint64_t, std::size_t> measure_counts_;
};

}  // namespace htd::silicon
