#include "silicon/bench_measure.hpp"

#include <stdexcept>

namespace htd::silicon {

// --- DuttDataset -----------------------------------------------------------

std::vector<ml::DeviceLabel> DuttDataset::labels() const {
    std::vector<ml::DeviceLabel> out;
    out.reserve(variants.size());
    for (const trojan::DesignVariant v : variants) {
        out.push_back(v == trojan::DesignVariant::kTrojanFree
                          ? ml::DeviceLabel::kTrojanFree
                          : ml::DeviceLabel::kTrojanInfested);
    }
    return out;
}

std::vector<std::size_t> DuttDataset::trojan_free_indices() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        if (variants[i] == trojan::DesignVariant::kTrojanFree) out.push_back(i);
    }
    return out;
}

linalg::Matrix DuttDataset::fingerprints_at(const std::vector<std::size_t>& rows) const {
    linalg::Matrix out(rows.size(), fingerprints.cols());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out.set_row(i, fingerprints.row(rows[i]));
    }
    return out;
}

// --- MeasurementSource -----------------------------------------------------------

DuttDataset MeasurementSource::measure_lot(const FabricatedLot& lot,
                                           rng::Rng& rng) const {
    DuttDataset ds;
    ds.variants.reserve(lot.devices.size());
    for (const Device& dev : lot.devices) {
        ds.fingerprints.append_row(measure_fingerprint(dev, rng));
        ds.pcms.append_row(measure_pcm(dev, rng));
        ds.variants.push_back(dev.variant);
    }
    return ds;
}

// --- MeasurementBench ---------------------------------------------------------

namespace {

/// Which monitored paths a Trojan's routing taps: the two payloads occupy
/// different die regions, so each loads a different (fixed) path subset.
linalg::Vector trojan_load_pattern(std::size_t n_paths, double load_ff,
                                   trojan::DesignVariant variant) {
    linalg::Vector load(n_paths);
    for (std::size_t i = 0; i < n_paths; ++i) {
        const bool tapped = variant == trojan::DesignVariant::kTrojanAmplitude
                                ? (i % 3 != 2)   // paths 0,1,3,4,6,...
                                : (i % 2 == 1);  // paths 1,3,5,...
        if (tapped) load[i] = load_ff;
    }
    return load;
}

}  // namespace

MeasurementBench::MeasurementBench(PlatformConfig config)
    : config_(std::move(config)),
      monitored_paths_(config_.monitored_paths),
      amp_trojan_load_ff_(trojan_load_pattern(config_.monitored_paths,
                                              config_.trojan_delay_load_ff,
                                              trojan::DesignVariant::kTrojanAmplitude)),
      freq_trojan_load_ff_(trojan_load_pattern(
          config_.monitored_paths, config_.trojan_delay_load_ff,
          trojan::DesignVariant::kTrojanFrequency)),
      cipher_bits_(config_.ciphertext_bits()),
      key_bits_(config_.key_bits()),
      pcm_path_(config_.pcm_path),
      ring_osc_(config_.ring_oscillator),
      meter_(config_.meter),
      amp_trojan_(trojan::make_trojan(trojan::DesignVariant::kTrojanAmplitude,
                                      config_.trojan_amplitude_epsilon,
                                      config_.trojan_frequency_delta_ghz)),
      freq_trojan_(trojan::make_trojan(trojan::DesignVariant::kTrojanFrequency,
                                       config_.trojan_amplitude_epsilon,
                                       config_.trojan_frequency_delta_ghz)),
      tx_free_(rf::PowerAmplifier(config_.pa), nullptr),
      tx_amp_(rf::PowerAmplifier(config_.pa), amp_trojan_.get()),
      tx_freq_(rf::PowerAmplifier(config_.pa), freq_trojan_.get()) {
    if (config_.plaintext_blocks.empty()) {
        throw std::invalid_argument("MeasurementBench: no plaintext blocks configured");
    }
}

const rf::UwbTransmitter& MeasurementBench::transmitter_for(
    trojan::DesignVariant v) const {
    switch (v) {
        case trojan::DesignVariant::kTrojanFree: return tx_free_;
        case trojan::DesignVariant::kTrojanAmplitude: return tx_amp_;
        case trojan::DesignVariant::kTrojanFrequency: return tx_freq_;
    }
    throw std::invalid_argument("MeasurementBench: unknown design variant");
}

linalg::Vector MeasurementBench::measure_pcm(const Device& device, rng::Rng& rng) const {
    linalg::Vector pcm(config_.pcm_dim());
    const double delay = pcm_path_.delay_ns(device.point);
    pcm[0] = delay * (1.0 + rng.normal(0.0, config_.pcm_noise_fraction));
    if (config_.include_ring_oscillator) {
        const double freq = ring_osc_.frequency_mhz(device.point);
        pcm[1] = freq * (1.0 + rng.normal(0.0, config_.pcm_noise_fraction));
    }
    return pcm;
}

linalg::Vector MeasurementBench::measure_fingerprint(const Device& device,
                                                     rng::Rng& rng) const {
    switch (config_.fingerprint_mode) {
        case FingerprintMode::kTransmitPower:
            return measure_power_fingerprint(device, rng);
        case FingerprintMode::kPathDelay:
            return measure_delay_fingerprint(device, rng);
        case FingerprintMode::kCombined: {
            const linalg::Vector power = measure_power_fingerprint(device, rng);
            const linalg::Vector delay = measure_delay_fingerprint(device, rng);
            linalg::Vector both(power.size() + delay.size());
            for (std::size_t i = 0; i < power.size(); ++i) both[i] = power[i];
            for (std::size_t i = 0; i < delay.size(); ++i) {
                both[power.size() + i] = delay[i];
            }
            return both;
        }
    }
    throw std::invalid_argument("MeasurementBench: unknown fingerprint mode");
}

linalg::Vector MeasurementBench::measure_delay_fingerprint(const Device& device,
                                                           rng::Rng& rng) const {
    linalg::Vector extra;
    if (device.variant == trojan::DesignVariant::kTrojanAmplitude) {
        extra = amp_trojan_load_ff_;
    } else if (device.variant == trojan::DesignVariant::kTrojanFrequency) {
        extra = freq_trojan_load_ff_;
    }
    linalg::Vector delays = monitored_paths_.delays_ns(device.point, extra);
    for (std::size_t i = 0; i < delays.size(); ++i) {
        delays[i] *= 1.0 + rng.normal(0.0, config_.delay_noise_fraction);
    }
    return delays;
}

linalg::Vector MeasurementBench::measure_power_fingerprint(const Device& device,
                                                           rng::Rng& rng) const {
    const rf::UwbTransmitter& tx = transmitter_for(device.variant);
    // Mismatch terms are fixed per device in real silicon; since each device
    // is fingerprinted once, independent draws at measurement time are
    // statistically equivalent.
    const double common_offset =
        config_.gain_mismatch_db > 0.0 ? rng.normal(0.0, config_.gain_mismatch_db)
                                       : 0.0;
    linalg::Vector fp(cipher_bits_.size());
    for (std::size_t b = 0; b < cipher_bits_.size(); ++b) {
        const auto observations =
            tx.transmit_block(device.point, cipher_bits_[b], key_bits_);
        fp[b] = meter_.average_power_dbm(observations, rng) + common_offset;
        if (config_.fingerprint_mismatch_db > 0.0) {
            fp[b] += rng.normal(0.0, config_.fingerprint_mismatch_db);
        }
    }
    return fp;
}

DuttDataset MeasurementBench::measure_lot(const FabricatedLot& lot, rng::Rng& rng) const {
    DuttDataset ds;
    ds.fingerprints = linalg::Matrix(lot.devices.size(), config_.fingerprint_dim());
    ds.pcms = linalg::Matrix(lot.devices.size(), config_.pcm_dim());
    ds.variants.reserve(lot.devices.size());
    for (std::size_t i = 0; i < lot.devices.size(); ++i) {
        const Device& dev = lot.devices[i];
        ds.fingerprints.set_row(i, measure_fingerprint(dev, rng));
        ds.pcms.set_row(i, measure_pcm(dev, rng));
        ds.variants.push_back(dev.variant);
    }
    return ds;
}

std::vector<trojan::PulseObservation> MeasurementBench::capture_transmission(
    const Device& device, std::size_t block_index) const {
    if (block_index >= cipher_bits_.size()) {
        throw std::out_of_range("MeasurementBench::capture_transmission: block index");
    }
    return transmitter_for(device.variant)
        .transmit_block(device.point, cipher_bits_[block_index], key_bits_);
}

// --- SpiceSimulator ---------------------------------------------------------------

SpiceSimulator::SpiceSimulator(PlatformConfig config,
                               process::ProcessVariationModel spice_model)
    : config_(std::move(config)),
      spice_model_(std::move(spice_model)),
      monitored_paths_(config_.monitored_paths),
      cipher_bits_(config_.ciphertext_bits()),
      key_bits_(config_.key_bits()),
      pcm_path_(config_.pcm_path),
      ring_osc_(config_.ring_oscillator),
      meter_([&] {
          // Simulation is noise-free regardless of the bench noise setting.
          rf::PowerMeter::Options m = config_.meter;
          m.noise_sigma_db = 0.0;
          return m;
      }()),
      tx_free_(rf::PowerAmplifier(config_.pa), nullptr) {
    if (config_.plaintext_blocks.empty()) {
        throw std::invalid_argument("SpiceSimulator: no plaintext blocks configured");
    }
}

linalg::Vector SpiceSimulator::pcm_at(const process::ProcessPoint& pp) const {
    linalg::Vector pcm(config_.pcm_dim());
    pcm[0] = pcm_path_.delay_ns(pp);
    if (config_.include_ring_oscillator) pcm[1] = ring_osc_.frequency_mhz(pp);
    return pcm;
}

linalg::Vector SpiceSimulator::fingerprint_at(const process::ProcessPoint& pp) const {
    const std::size_t nm_power = cipher_bits_.size();
    linalg::Vector fp(config_.fingerprint_dim());
    std::size_t offset = 0;
    if (config_.fingerprint_mode == FingerprintMode::kTransmitPower ||
        config_.fingerprint_mode == FingerprintMode::kCombined) {
        for (std::size_t b = 0; b < nm_power; ++b) {
            const auto observations =
                tx_free_.transmit_block(pp, cipher_bits_[b], key_bits_);
            fp[b] = rf::mw_to_dbm(std::max(meter_.average_power_mw(observations), 1e-12));
        }
        offset = nm_power;
    }
    if (config_.fingerprint_mode == FingerprintMode::kPathDelay ||
        config_.fingerprint_mode == FingerprintMode::kCombined) {
        const linalg::Vector delays = monitored_paths_.delays_ns(pp);
        for (std::size_t i = 0; i < delays.size(); ++i) {
            fp[(config_.fingerprint_mode == FingerprintMode::kPathDelay ? 0 : offset) +
               i] = delays[i];
        }
    }
    return fp;
}

SpiceSimulator::GoldenData SpiceSimulator::simulate_golden(rng::Rng& rng,
                                                           std::size_t n) const {
    if (n == 0) throw std::invalid_argument("SpiceSimulator::simulate_golden: n == 0");
    GoldenData data;
    data.pcms = linalg::Matrix(n, config_.pcm_dim());
    data.fingerprints = linalg::Matrix(n, config_.fingerprint_dim());
    for (std::size_t i = 0; i < n; ++i) {
        const process::ProcessPoint pp = spice_model_.sample_monte_carlo(rng);
        data.pcms.set_row(i, pcm_at(pp));
        data.fingerprints.set_row(i, fingerprint_at(pp));
    }
    return data;
}

}  // namespace htd::silicon
