#include "silicon/fault_injector.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace htd::silicon {

namespace {

void check_rate(double rate, const char* name) {
    if (!(rate >= 0.0 && rate <= 1.0)) {
        throw std::invalid_argument(std::string("FaultModel: ") + name +
                                    " must be in [0, 1]");
    }
}

void check_magnitude(double value, const char* name) {
    if (!(value >= 0.0) || !std::isfinite(value)) {
        throw std::invalid_argument(std::string("FaultModel: ") + name +
                                    " must be finite and >= 0");
    }
}

}  // namespace

void FaultModel::validate() const {
    check_rate(nan_dropout_rate, "nan_dropout_rate");
    check_rate(inf_fraction, "inf_fraction");
    check_rate(stuck_rate, "stuck_rate");
    check_rate(spike_rate, "spike_rate");
    check_magnitude(spike_magnitude, "spike_magnitude");
    check_magnitude(gain_drift_per_device, "gain_drift_per_device");
    check_magnitude(retest_jitter_fraction, "retest_jitter_fraction");
}

FaultyBench::FaultyBench(const MeasurementSource& inner, FaultModel model)
    : inner_(inner), model_(model), fault_rng_(model.seed) {
    model_.validate();
}

void FaultyBench::reset() {
    fault_rng_ = rng::Rng(model_.seed);
    stats_ = FaultStats{};
    latch_pcm_ = linalg::Vector{};
    latch_fp_ = linalg::Vector{};
    drift_dir_pcm_ = linalg::Vector{};
    drift_dir_fp_ = linalg::Vector{};
    sequence_pcm_ = 0;
    sequence_fp_ = 0;
    measure_counts_.clear();
}

linalg::Vector FaultyBench::measure_pcm(const Device& device, rng::Rng& rng) const {
    linalg::Vector reading = inner_.measure_pcm(device, rng);
    apply_faults(reading, Kind::kPcm, device);
    return reading;
}

linalg::Vector FaultyBench::measure_fingerprint(const Device& device,
                                                rng::Rng& rng) const {
    linalg::Vector reading = inner_.measure_fingerprint(device, rng);
    apply_faults(reading, Kind::kFingerprint, device);
    return reading;
}

void FaultyBench::apply_faults(linalg::Vector& reading, Kind kind,
                               const Device& device) const {
    const bool is_fp = kind == Kind::kFingerprint;
    linalg::Vector& latch = is_fp ? latch_fp_ : latch_pcm_;
    linalg::Vector& drift_dir = is_fp ? drift_dir_fp_ : drift_dir_pcm_;
    std::size_t& sequence = is_fp ? sequence_fp_ : sequence_pcm_;

    if (drift_dir.size() != reading.size()) {
        drift_dir = linalg::Vector(reading.size());
        for (std::size_t c = 0; c < reading.size(); ++c) {
            drift_dir[c] = fault_rng_.bernoulli(0.5) ? 1.0 : -1.0;
        }
    }

    ++stats_.measurements;
    const std::uint64_t key = (static_cast<std::uint64_t>(device.chip_id) << 3) |
                              (static_cast<std::uint64_t>(device.variant) << 1) |
                              (is_fp ? 1u : 0u);
    const bool retest = measure_counts_[key]++ > 0;
    if (retest) ++stats_.remeasures;
    // One whole-device offset per retest, not per channel: the socket /
    // thermal state shifts every reading of the contact together.
    const double retest_offset =
        retest && model_.retest_jitter_fraction > 0.0
            ? fault_rng_.normal(0.0, model_.retest_jitter_fraction)
            : 0.0;

    for (std::size_t c = 0; c < reading.size(); ++c) {
        double v = reading[c];
        if (model_.gain_drift_per_device > 0.0) {
            const double drift = model_.gain_drift_per_device *
                                 static_cast<double>(sequence) * drift_dir[c];
            v = is_fp ? v + drift : v * (1.0 + drift);
        }
        if (retest_offset != 0.0) {
            v = is_fp ? v + retest_offset : v * (1.0 + retest_offset);
        }
        if (model_.spike_rate > 0.0 && fault_rng_.bernoulli(model_.spike_rate)) {
            const double sign = fault_rng_.bernoulli(0.5) ? 1.0 : -1.0;
            v = is_fp ? v + sign * model_.spike_magnitude
                      : v * (1.0 + sign * model_.spike_magnitude);
            ++stats_.spikes_injected;
        }
        if (model_.stuck_rate > 0.0 && latch.size() == reading.size() &&
            fault_rng_.bernoulli(model_.stuck_rate)) {
            v = latch[c];
            ++stats_.stuck_injected;
        }
        // Dropouts last: a lost contact hides every other fault.
        if (model_.nan_dropout_rate > 0.0 &&
            fault_rng_.bernoulli(model_.nan_dropout_rate)) {
            if (fault_rng_.bernoulli(model_.inf_fraction)) {
                v = fault_rng_.bernoulli(0.5)
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
                ++stats_.inf_injected;
            } else {
                v = std::numeric_limits<double>::quiet_NaN();
                ++stats_.nan_injected;
            }
        }
        reading[c] = v;
    }

    // The latch repeats the last ADC code that existed: keep the previous
    // value on channels that just dropped out.
    if (latch.size() != reading.size()) latch = linalg::Vector(reading.size());
    for (std::size_t c = 0; c < reading.size(); ++c) {
        if (std::isfinite(reading[c])) latch[c] = reading[c];
    }
    ++sequence;
}

}  // namespace htd::silicon
