#pragma once
/// \file bench_measure.hpp
/// The measurement side of the experiment:
///  - `MeasurementBench` plays the role of the tester measuring fabricated
///    devices: PCM e-tests (path delay, optional ring-oscillator frequency)
///    and the nm transmit-power fingerprints, both with instrument noise.
///  - `SpiceSimulator` plays the role of the trusted Spice-level Monte Carlo
///    of golden devices: identical circuit equations evaluated at process
///    points drawn from the *stale* simulation model, with no bench noise.
///  - `DuttDataset` bundles the measured populations the detection pipeline
///    consumes.

#include <vector>

#include "circuit/delay.hpp"
#include "linalg/matrix.hpp"
#include "ml/metrics.hpp"
#include "process/variation_model.hpp"
#include "rf/uwb.hpp"
#include "silicon/fab.hpp"
#include "silicon/platform.hpp"

namespace htd::silicon {

/// Measurements of a device population.
struct DuttDataset {
    linalg::Matrix fingerprints;                 ///< N x nm [dBm]
    linalg::Matrix pcms;                         ///< N x np
    std::vector<trojan::DesignVariant> variants; ///< per device

    [[nodiscard]] std::size_t size() const noexcept { return variants.size(); }

    /// Ground-truth labels for metric evaluation.
    [[nodiscard]] std::vector<ml::DeviceLabel> labels() const;

    /// Row indices of the Trojan-free devices.
    [[nodiscard]] std::vector<std::size_t> trojan_free_indices() const;

    /// Submatrix of fingerprints for the given row indices.
    [[nodiscard]] linalg::Matrix fingerprints_at(
        const std::vector<std::size_t>& rows) const;
};

/// Abstract source of device measurements. `MeasurementBench` is the clean
/// tester; `FaultyBench` (fault_injector.hpp) decorates any source with
/// injected measurement faults; `core::MeasurementValidator` (core/ingest.hpp)
/// drives its bounded re-measure policy through this interface.
class MeasurementSource {
public:
    virtual ~MeasurementSource() = default;

    /// PCM measurement vector (np entries) of a device.
    [[nodiscard]] virtual linalg::Vector measure_pcm(const Device& device,
                                                     rng::Rng& rng) const = 0;

    /// Side-channel fingerprint (nm entries) of a device.
    [[nodiscard]] virtual linalg::Vector measure_fingerprint(const Device& device,
                                                             rng::Rng& rng) const = 0;

    /// Measure a whole fabricated lot. The default loops the per-device
    /// calls in lot order (fingerprint first, then PCM, per device).
    [[nodiscard]] virtual DuttDataset measure_lot(const FabricatedLot& lot,
                                                  rng::Rng& rng) const;
};

/// The tester bench.
class MeasurementBench : public MeasurementSource {
public:
    /// Throws std::invalid_argument when the platform has no plaintext blocks.
    explicit MeasurementBench(PlatformConfig config);

    /// PCM measurement vector (np entries) of a device, with jitter.
    [[nodiscard]] linalg::Vector measure_pcm(const Device& device,
                                             rng::Rng& rng) const override;

    /// Side-channel fingerprint (nm entries, dBm) of a device: transmit the
    /// nm ciphertext blocks and record the average block power.
    [[nodiscard]] linalg::Vector measure_fingerprint(const Device& device,
                                                     rng::Rng& rng) const override;

    /// Measure a whole fabricated lot.
    [[nodiscard]] DuttDataset measure_lot(const FabricatedLot& lot,
                                          rng::Rng& rng) const override;

    /// Raw per-bit observations of one block transmission by a device —
    /// what an attacker's antenna captures. `block_index` selects the
    /// plaintext block.
    [[nodiscard]] std::vector<trojan::PulseObservation> capture_transmission(
        const Device& device, std::size_t block_index) const;

    [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

private:
    [[nodiscard]] const rf::UwbTransmitter& transmitter_for(
        trojan::DesignVariant v) const;
    [[nodiscard]] linalg::Vector measure_power_fingerprint(const Device& device,
                                                           rng::Rng& rng) const;
    [[nodiscard]] linalg::Vector measure_delay_fingerprint(const Device& device,
                                                           rng::Rng& rng) const;

    PlatformConfig config_;
    circuit::MonitoredPathSet monitored_paths_;
    linalg::Vector amp_trojan_load_ff_;
    linalg::Vector freq_trojan_load_ff_;
    std::vector<std::array<bool, 128>> cipher_bits_;
    std::array<bool, 128> key_bits_{};
    circuit::PcmPath pcm_path_;
    circuit::RingOscillatorPcm ring_osc_;
    rf::PowerMeter meter_;
    std::unique_ptr<trojan::TrojanEffect> amp_trojan_;
    std::unique_ptr<trojan::TrojanEffect> freq_trojan_;
    rf::UwbTransmitter tx_free_;
    rf::UwbTransmitter tx_amp_;
    rf::UwbTransmitter tx_freq_;
};

/// Monte Carlo "Spice" simulation of golden (Trojan-free) devices.
class SpiceSimulator {
public:
    /// `spice_model` is the trusted but stale process model. Throws
    /// std::invalid_argument when the platform has no plaintext blocks.
    SpiceSimulator(PlatformConfig config, process::ProcessVariationModel spice_model);

    struct GoldenData {
        linalg::Matrix pcms;          ///< n x np
        linalg::Matrix fingerprints;  ///< n x nm [dBm]
    };

    /// Simulate `n` golden devices under full Monte Carlo process variation.
    /// Simulation is noise-free: the model is deterministic given a process
    /// point, which is exactly what a Spice testbench would produce.
    [[nodiscard]] GoldenData simulate_golden(rng::Rng& rng, std::size_t n) const;

    /// Noise-free PCM vector at one process point.
    [[nodiscard]] linalg::Vector pcm_at(const process::ProcessPoint& pp) const;

    /// Noise-free fingerprint vector at one process point.
    [[nodiscard]] linalg::Vector fingerprint_at(const process::ProcessPoint& pp) const;

    [[nodiscard]] const process::ProcessVariationModel& model() const noexcept {
        return spice_model_;
    }
    [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }

private:
    PlatformConfig config_;
    process::ProcessVariationModel spice_model_;
    circuit::MonitoredPathSet monitored_paths_;
    std::vector<std::array<bool, 128>> cipher_bits_;
    std::array<bool, 128> key_bits_{};
    circuit::PcmPath pcm_path_;
    circuit::RingOscillatorPcm ring_osc_;
    rf::PowerMeter meter_;
    rf::UwbTransmitter tx_free_;
};

}  // namespace htd::silicon
