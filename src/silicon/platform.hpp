#pragma once
/// \file platform.hpp
/// Configuration of the wireless cryptographic IC experimentation platform:
/// the on-chip AES key, the plaintext blocks whose transmissions are
/// fingerprinted, the Trojan strengths, and the analog/measurement options.
/// One PlatformConfig describes both what is fabricated and how it is
/// measured, mirroring the paper's setup (nm = 6 transmit-power
/// fingerprints, np = 1 path-delay PCM).

#include <cstdint>
#include <vector>

#include "circuit/delay.hpp"
#include "circuit/monitored_paths.hpp"
#include "crypto/aes.hpp"
#include "rf/uwb.hpp"

namespace htd::silicon {

/// Which side channel the fingerprints come from.
enum class FingerprintMode {
    kTransmitPower,  ///< the paper's nm = 6 transmit-power measurements
    kPathDelay,      ///< path-delay fingerprints (Jin & Makris, HOST'08 [7])
    kCombined,       ///< both, concatenated (multi-parameter fusion [10,13])
};

/// Full platform description.
struct PlatformConfig {
    /// The AES-128 key stored on chip (and leaked by the Trojans).
    crypto::Block aes_key{};

    /// Plaintext blocks encrypted and transmitted for fingerprinting; the
    /// paper uses 6 randomly chosen blocks (nm = 6).
    std::vector<crypto::Block> plaintext_blocks;

    /// Trojan strengths: amplitude scale (1 + eps) and frequency offset.
    double trojan_amplitude_epsilon = 0.40;
    double trojan_frequency_delta_ghz = 0.60;

    /// Analog models.
    rf::PowerAmplifier::Options pa{};
    rf::PowerMeter::Options meter{};

    /// PCM structures: the on-die path-delay monitor (np = 1) and an
    /// optional kerf ring oscillator (np = 2 when enabled).
    circuit::PcmPath::Options pcm_path{};
    bool include_ring_oscillator = false;
    circuit::RingOscillatorPcm::Options ring_oscillator{};

    /// Relative 1-sigma jitter of a PCM measurement.
    double pcm_noise_fraction = 0.003;

    /// Device-level gain mismatch [dB, 1-sigma], common to every block: PA
    /// bias-current mismatch gives each die a gain offset that the nominal
    /// Spice netlist does not capture and the delay PCM cannot predict. This
    /// is the dominant part of the fingerprint variance left unexplained by
    /// the regression stage — it displaces a device *along* the trusted tube
    /// (all six fingerprints together).
    double gain_mismatch_db = 0.15;

    /// Per-block gain mismatch [dB, 1-sigma]: the small pattern-dependent
    /// nonlinearity spread that differs between stored blocks. This is the
    /// transverse thickness of the Trojan-free fingerprint cloud, and must
    /// stay below the Trojans' transverse signature for FP = 0.
    double fingerprint_mismatch_db = 0.02;

    /// Relative 1-sigma mismatch of the several design versions sharing one
    /// die (fraction of the die-level process sigma).
    double within_die_fraction = 0.15;

    /// Side-channel modality of the fingerprints.
    FingerprintMode fingerprint_mode = FingerprintMode::kTransmitPower;

    /// Number of monitored timing paths for the path-delay modality.
    std::size_t monitored_paths = 8;

    /// Capacitive load [fF] a Trojan's taps add to each monitored path it
    /// runs near (path-delay modality only).
    double trojan_delay_load_ff = 25.0;

    /// Relative 1-sigma jitter of a path-delay fingerprint measurement.
    double delay_noise_fraction = 0.002;

    /// Number of side-channel fingerprints nm (mode dependent).
    [[nodiscard]] std::size_t fingerprint_dim() const noexcept {
        switch (fingerprint_mode) {
            case FingerprintMode::kTransmitPower: return plaintext_blocks.size();
            case FingerprintMode::kPathDelay: return monitored_paths;
            case FingerprintMode::kCombined:
                return plaintext_blocks.size() + monitored_paths;
        }
        return plaintext_blocks.size();
    }

    /// Number of PCM measurements np.
    [[nodiscard]] std::size_t pcm_dim() const noexcept {
        return include_ring_oscillator ? 2 : 1;
    }

    /// The paper's default platform: a random key and 6 random plaintext
    /// blocks drawn from `seed`, 0.02 dB meter noise, default analog models.
    [[nodiscard]] static PlatformConfig paper_default(std::uint64_t seed = 0xd0c'ac14ULL);

    /// Precomputed ciphertext bit patterns for every plaintext block under
    /// the platform key (what the serialization buffer feeds the UWB).
    [[nodiscard]] std::vector<std::array<bool, 128>> ciphertext_bits() const;

    /// The key as a 128-bit pattern (the Trojans' leak payload).
    [[nodiscard]] std::array<bool, 128> key_bits() const noexcept {
        return crypto::block_to_bits(aes_key);
    }
};

}  // namespace htd::silicon
