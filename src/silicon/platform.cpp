#include "silicon/platform.hpp"

#include "rng/rng.hpp"

namespace htd::silicon {

PlatformConfig PlatformConfig::paper_default(std::uint64_t seed) {
    PlatformConfig cfg;
    rng::Rng rng(seed);
    for (auto& byte : cfg.aes_key) {
        byte = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    }
    cfg.plaintext_blocks.resize(6);
    for (auto& block : cfg.plaintext_blocks) {
        for (auto& byte : block) {
            byte = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
        }
    }
    cfg.meter.noise_sigma_db = 0.015;
    cfg.meter.bandwidth_ghz = 0.4;
    // The bench measures power in a fixed regulatory sub-band sitting above
    // the PA's process-nominal pulse centroid; a frequency-leak Trojan that
    // shifts modulated pulses upward therefore moves them *into* the
    // measured band and raises the reading.
    cfg.meter.center_freq_ghz = 4.5;
    return cfg;
}

std::vector<std::array<bool, 128>> PlatformConfig::ciphertext_bits() const {
    const crypto::Aes aes(aes_key);
    std::vector<std::array<bool, 128>> out;
    out.reserve(plaintext_blocks.size());
    for (const crypto::Block& pt : plaintext_blocks) {
        out.push_back(crypto::block_to_bits(aes.encrypt(pt)));
    }
    return out;
}

}  // namespace htd::silicon
