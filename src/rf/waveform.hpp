#pragma once
/// \file waveform.hpp
/// Time-domain view of the UWB channel: synthesis of the sampled waveform a
/// block transmission puts on the antenna, and a windowed-DFT spectrum
/// analyzer. This is the signal-level counterpart of the behavioural
/// `rf::PowerMeter` — the analytic band-power expression the pipeline uses
/// is validated against an actual sampled-waveform measurement
/// (tests/test_waveform.cpp), and the spectrum path lets examples show what
/// the Trojan modulation looks like on a spectrum display.

#include <span>
#include <vector>

#include "trojan/trojan.hpp"

namespace htd::rf {

/// A uniformly sampled real waveform.
struct SampledWaveform {
    double sample_rate_ghz = 0.0;  ///< samples per nanosecond
    std::vector<double> samples;   ///< volts

    [[nodiscard]] double duration_ns() const noexcept {
        return sample_rate_ghz > 0.0
                   ? static_cast<double>(samples.size()) / sample_rate_ghz
                   : 0.0;
    }
};

/// Synthesize the antenna waveform of one OOK block transmission: each
/// transmitted slot contributes a Gaussian-envelope pulse
/// A exp(-(t - t_c)^2 / (2 tau^2)) cos(2 pi f (t - t_c)) centered in its bit
/// period. Throws std::invalid_argument for non-positive rates/periods or a
/// sample rate below twice the highest pulse frequency (Nyquist).
[[nodiscard]] SampledWaveform synthesize_block(
    std::span<const trojan::PulseObservation> block, double bit_period_ns,
    double sample_rate_ghz);

/// Power of a waveform in watts into `load_ohm`, averaged over its duration.
[[nodiscard]] double average_power_w(const SampledWaveform& wave,
                                     double load_ohm = 50.0);

/// Windowed-DFT spectrum analyzer.
class SpectrumAnalyzer {
public:
    /// `resolution_ghz` is the frequency grid spacing of band sweeps.
    /// Throws std::invalid_argument when non-positive.
    explicit SpectrumAnalyzer(double resolution_ghz = 0.05);

    /// Power spectral content at one frequency [W into load]: magnitude^2 of
    /// the Hann-windowed Goertzel bin, normalized so a pure tone of
    /// amplitude A reports ~A^2/2/load.
    [[nodiscard]] double tone_power_w(const SampledWaveform& wave, double freq_ghz,
                                      double load_ohm = 50.0) const;

    /// Band power [W]: sum of tone powers across the band on the analyzer's
    /// frequency grid. Throws std::invalid_argument for an empty band.
    [[nodiscard]] double band_power_w(const SampledWaveform& wave, double f_lo_ghz,
                                      double f_hi_ghz, double load_ohm = 50.0) const;

    /// Full sweep: (frequency, power) pairs across [f_lo, f_hi].
    [[nodiscard]] std::vector<std::pair<double, double>> sweep(
        const SampledWaveform& wave, double f_lo_ghz, double f_hi_ghz,
        double load_ohm = 50.0) const;

    [[nodiscard]] double resolution_ghz() const noexcept { return resolution_; }

private:
    double resolution_;
};

}  // namespace htd::rf
