#include "rf/uwb.hpp"

#include <cmath>
#include <stdexcept>

#include "core/annotations.hpp"
#include "core/stable_sum.hpp"

namespace htd::rf {

double mw_to_dbm(double mw) {
    if (mw <= 0.0) throw std::domain_error("mw_to_dbm: non-positive power");
    return 10.0 * std::log10(mw);
}

double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }

// --- PowerAmplifier -----------------------------------------------------------

PowerAmplifier::PowerAmplifier(Options opts)
    : opts_(opts),
      driver_(circuit::MosType::kNmos,
              circuit::MosfetGeometry{opts.driver_width_um, 0.35}) {
    if (opts.vdd <= 0.0 || opts.load_ohm <= 0.0 || opts.nominal_freq_ghz <= 0.0 ||
        opts.nominal_tau_ns <= 0.0) {
        throw std::invalid_argument("PowerAmplifier: non-positive option");
    }
    const process::ProcessPoint nominal = process::nominal_350nm();
    nominal_gm_ = driver_.transconductance_ma_per_v(nominal, opts_.bias_v);
    if (nominal_gm_ <= 0.0) {
        throw std::invalid_argument("PowerAmplifier: driver off at the nominal bias");
    }
    nominal_cload_ =
        process::cox_ff_per_um2(nominal.tox_nm()) * nominal.cj_scale();
}

UwbPulseParams PowerAmplifier::pulse_params(const process::ProcessPoint& pp) const {
    UwbPulseParams pulse;

    // Output amplitude: a gm * R_L voltage swing referenced to the nominal
    // design point (A = 1 V at the nominal process).
    const double gm = driver_.transconductance_ma_per_v(pp, opts_.bias_v);
    pulse.amplitude_v = gm / nominal_gm_;

    // Tank frequency: f = 1/(2 pi sqrt(L C)); with a fixed inductor the
    // free-running frequency moves as 1/sqrt(C). The production-test trim
    // compensates most of that spread, leaving the configured residual
    // exponent of sensitivity to the capacitance ratio.
    const double cload = process::cox_ff_per_um2(pp.tox_nm()) * pp.cj_scale();
    pulse.center_freq_ghz =
        opts_.nominal_freq_ghz *
        std::pow(nominal_cload_ / cload, opts_.freq_tuning_exponent);

    // Envelope width: the shaping network's RC; track sheet resistance and
    // parasitic capacitance.
    pulse.tau_ns = opts_.nominal_tau_ns * (pp.rsheet() / 75.0) * pp.cj_scale();

    return pulse;
}

// --- UwbTransmitter -----------------------------------------------------------

UwbTransmitter::UwbTransmitter(PowerAmplifier pa, const trojan::TrojanEffect* trojan)
    : pa_(std::move(pa)), trojan_(trojan) {}

std::vector<trojan::PulseObservation> UwbTransmitter::transmit_block(
    const process::ProcessPoint& pp, const std::array<bool, 128>& ciphertext_bits,
    const std::array<bool, 128>& key_bits) const {
    const UwbPulseParams base = pa_.pulse_params(pp);

    std::vector<trojan::PulseObservation> out(128);
    for (std::size_t i = 0; i < 128; ++i) {
        trojan::PulseObservation& obs = out[i];
        if (!ciphertext_bits[i]) continue;  // OOK: '0' slots are silent
        obs.transmitted = true;
        obs.amplitude_v = base.amplitude_v;
        obs.frequency_ghz = base.center_freq_ghz;
        obs.tau_ns = base.tau_ns;
        if (trojan_ != nullptr) {
            const trojan::BitModulation mod = trojan_->modulate(i, key_bits);
            obs.amplitude_v *= mod.amplitude_scale;
            obs.frequency_ghz += mod.frequency_offset_ghz;
        }
    }
    return out;
}

// --- PowerMeter -----------------------------------------------------------------

PowerMeter::PowerMeter(Options opts) : opts_(opts) {
    if (opts.bandwidth_ghz <= 0.0 || opts.bit_period_ns <= 0.0) {
        throw std::invalid_argument("PowerMeter: non-positive option");
    }
    if (opts.noise_sigma_db < 0.0) {
        throw std::invalid_argument("PowerMeter: negative noise sigma");
    }
}

double PowerMeter::band_response(double freq_ghz) const noexcept {
    const double d = freq_ghz - opts_.center_freq_ghz;
    const double s = opts_.bandwidth_ghz;
    return std::exp(-0.5 * d * d / (s * s));
}

double PowerMeter::average_power_mw(
    std::span<const trojan::PulseObservation> block) const {
    if (block.empty()) throw std::invalid_argument("PowerMeter: empty block");
    // A Gaussian-envelope pulse A exp(-t^2/(2 tau^2)) cos(2 pi f t) into a
    // load R carries energy E = A^2 tau sqrt(pi)/2 / R (the cos^2 averages to
    // 1/2 and the envelope-squared integrates to tau sqrt(pi)). The meter
    // reports the band-weighted pulse energy averaged over the bit slot.
    constexpr double kLoadOhm = 50.0;
    constexpr double kSqrtPi = 1.7724538509055160273;
    // This is the Monte Carlo hot loop (one call per simulated block); the
    // compensated accumulator pins the summation order so a future
    // per-thread split reproduces today's fingerprints bit-for-bit.
    core::StableAccumulator total_mw;
    HTD_PARALLEL_READY;
    for (const trojan::PulseObservation& obs : block) {
        if (!obs.transmitted) continue;
        const double a = obs.amplitude_v;
        // A^2 [V^2] * tau [ns] / R [ohm] = nJ * 1e... : A^2/R is watts, times
        // tau/T_bit gives slot-average watts; report milliwatts.
        const double avg_mw = a * a * kSqrtPi / 2.0 / kLoadOhm * obs.tau_ns /
                              opts_.bit_period_ns * 1e3 *
                              band_response(obs.frequency_ghz);
        total_mw.add(avg_mw);
    }
    return total_mw.value() / static_cast<double>(block.size());
}

double PowerMeter::average_power_dbm(std::span<const trojan::PulseObservation> block,
                                     rng::Rng& rng) const {
    const double mw = average_power_mw(block);
    double dbm = mw_to_dbm(std::max(mw, 1e-12));
    if (opts_.noise_sigma_db > 0.0) dbm += rng.normal(0.0, opts_.noise_sigma_db);
    return dbm;
}

}  // namespace htd::rf
