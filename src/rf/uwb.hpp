#pragma once
/// \file uwb.hpp
/// Behavioural model of the platform's analog half: an Ultra-Wide-Band
/// (UWB) transmitter that sends each 128-bit ciphertext block as on-off-
/// keyed Gaussian pulses, plus the bench power meter whose band-limited
/// average-power reading is the paper's side-channel fingerprint.
///
/// The power amplifier's pulse amplitude, center frequency and pulse width
/// are analytic functions of the die's ProcessPoint (through the alpha-power
/// MOSFET model), so the fingerprints inherit the process-variation
/// statistics that the PCM regression stage must capture.

#include <array>
#include <vector>

#include "circuit/mosfet.hpp"
#include "process/process_point.hpp"
#include "rng/rng.hpp"
#include "trojan/trojan.hpp"

namespace htd::rf {

/// Parameters of one UWB pulse.
struct UwbPulseParams {
    double amplitude_v = 1.0;      ///< peak amplitude
    double center_freq_ghz = 4.0;  ///< carrier frequency
    double tau_ns = 0.5;           ///< Gaussian envelope width
};

/// The UWB power amplifier: maps a process point to nominal pulse
/// parameters.
class PowerAmplifier {
public:
    struct Options {
        double vdd = 3.3;
        double bias_v = 1.6;              ///< gate bias of the driver stage
        double load_ohm = 50.0;           ///< antenna load
        double driver_width_um = 60.0;    ///< PA driver device width
        double nominal_freq_ghz = 4.0;    ///< tank frequency at nominal process

        /// Sensitivity exponent of the tank frequency to the capacitance
        /// ratio: 0.5 for a free-running LC tank, smaller when the tank is
        /// digitally trimmed at production test (standard practice for
        /// UWB transmitters; the platform trims most but not all of the
        /// capacitance spread away).
        double freq_tuning_exponent = 0.15;
        double nominal_tau_ns = 0.5;      ///< envelope width at nominal process
    };

    PowerAmplifier() : PowerAmplifier(Options{}) {}
    explicit PowerAmplifier(Options opts);

    /// Pulse parameters at a process point (no Trojan, no noise).
    [[nodiscard]] UwbPulseParams pulse_params(const process::ProcessPoint& pp) const;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
    circuit::Mosfet driver_;
    double nominal_gm_;     ///< driver gm at the nominal 350 nm point
    double nominal_cload_;  ///< tank capacitance scale at the nominal point
};

/// The UWB transmitter: OOK transmission of a 128-bit block, with an
/// optional hardware Trojan modulating each pulse.
class UwbTransmitter {
public:
    /// `trojan` may be null (Trojan-free design); the pointer is non-owning
    /// and must outlive the transmitter.
    explicit UwbTransmitter(PowerAmplifier pa, const trojan::TrojanEffect* trojan = nullptr);

    /// Transmit one block: returns the per-bit-slot observations an antenna
    /// on the public channel would capture. Bits equal to '1' produce a
    /// pulse; '0' slots stay silent (OOK).
    [[nodiscard]] std::vector<trojan::PulseObservation> transmit_block(
        const process::ProcessPoint& pp, const std::array<bool, 128>& ciphertext_bits,
        const std::array<bool, 128>& key_bits) const;

    [[nodiscard]] bool has_trojan() const noexcept { return trojan_ != nullptr; }

private:
    PowerAmplifier pa_;
    const trojan::TrojanEffect* trojan_;
};

/// Band-limited average-power meter: integrates pulse energy weighted by a
/// Gaussian band response centered on the nominal UWB band, averaged over
/// the block duration, reported in dBm with multiplicative instrument noise.
class PowerMeter {
public:
    struct Options {
        double center_freq_ghz = 4.0;   ///< band center of the measurement
        double bandwidth_ghz = 1.2;     ///< Gaussian band response sigma
        double bit_period_ns = 10.0;    ///< OOK slot duration
        double noise_sigma_db = 0.0;    ///< instrument noise (dB, additive in log domain)
    };

    PowerMeter() : PowerMeter(Options{}) {}
    explicit PowerMeter(Options opts);

    /// Noise-free average block power [mW].
    [[nodiscard]] double average_power_mw(
        std::span<const trojan::PulseObservation> block) const;

    /// Average block power in dBm, with instrument noise drawn from `rng`.
    [[nodiscard]] double average_power_dbm(
        std::span<const trojan::PulseObservation> block, rng::Rng& rng) const;

    /// Band response H(f) in [0, 1] at frequency f.
    [[nodiscard]] double band_response(double freq_ghz) const noexcept;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
};

/// Convert linear milliwatts to dBm; throws std::domain_error for mw <= 0.
[[nodiscard]] double mw_to_dbm(double mw);

/// Convert dBm to linear milliwatts.
[[nodiscard]] double dbm_to_mw(double dbm) noexcept;

}  // namespace htd::rf
