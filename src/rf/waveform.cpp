#include "rf/waveform.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace htd::rf {

SampledWaveform synthesize_block(std::span<const trojan::PulseObservation> block,
                                 double bit_period_ns, double sample_rate_ghz) {
    if (bit_period_ns <= 0.0 || sample_rate_ghz <= 0.0) {
        throw std::invalid_argument("synthesize_block: non-positive timing");
    }
    double f_max = 0.0;
    for (const trojan::PulseObservation& obs : block) {
        if (obs.transmitted) f_max = std::max(f_max, obs.frequency_ghz);
    }
    if (sample_rate_ghz < 2.0 * f_max) {
        throw std::invalid_argument("synthesize_block: sample rate below Nyquist");
    }

    SampledWaveform wave;
    wave.sample_rate_ghz = sample_rate_ghz;
    const double total_ns = static_cast<double>(block.size()) * bit_period_ns;
    wave.samples.assign(
        static_cast<std::size_t>(std::ceil(total_ns * sample_rate_ghz)), 0.0);

    const double dt = 1.0 / sample_rate_ghz;
    for (std::size_t slot = 0; slot < block.size(); ++slot) {
        const trojan::PulseObservation& obs = block[slot];
        if (!obs.transmitted || obs.tau_ns <= 0.0) continue;
        const double t_center = (static_cast<double>(slot) + 0.5) * bit_period_ns;
        // The pulse is negligible beyond ~5 tau; only touch those samples.
        const double reach = 5.0 * obs.tau_ns;
        const auto s_lo = static_cast<std::size_t>(
            std::max(0.0, (t_center - reach) * sample_rate_ghz));
        const auto s_hi = std::min(
            wave.samples.size(),
            static_cast<std::size_t>((t_center + reach) * sample_rate_ghz) + 1);
        for (std::size_t s = s_lo; s < s_hi; ++s) {
            const double t = static_cast<double>(s) * dt - t_center;
            wave.samples[s] +=
                obs.amplitude_v *
                std::exp(-0.5 * t * t / (obs.tau_ns * obs.tau_ns)) *
                std::cos(2.0 * std::numbers::pi * obs.frequency_ghz * t);
        }
    }
    return wave;
}

double average_power_w(const SampledWaveform& wave, double load_ohm) {
    if (wave.samples.empty()) {
        throw std::invalid_argument("average_power_w: empty waveform");
    }
    if (load_ohm <= 0.0) throw std::invalid_argument("average_power_w: bad load");
    double acc = 0.0;
    for (const double v : wave.samples) acc += v * v;
    return acc / static_cast<double>(wave.samples.size()) / load_ohm;
}

// --- SpectrumAnalyzer ------------------------------------------------------------

SpectrumAnalyzer::SpectrumAnalyzer(double resolution_ghz) : resolution_(resolution_ghz) {
    if (resolution_ghz <= 0.0) {
        throw std::invalid_argument("SpectrumAnalyzer: non-positive resolution");
    }
}

double SpectrumAnalyzer::tone_power_w(const SampledWaveform& wave, double freq_ghz,
                                      double load_ohm) const {
    if (wave.samples.empty() || wave.sample_rate_ghz <= 0.0) {
        throw std::invalid_argument("SpectrumAnalyzer: empty waveform");
    }
    const std::size_t n = wave.samples.size();
    const double omega = 2.0 * std::numbers::pi * freq_ghz / wave.sample_rate_ghz;

    // Hann-windowed single-bin DFT (direct form; Goertzel would save a few
    // multiplies but the windows dominate anyway).
    double re = 0.0, im = 0.0, win_sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const double w =
            0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(k) /
                                  static_cast<double>(n - 1)));
        const double x = wave.samples[k] * w;
        re += x * std::cos(omega * static_cast<double>(k));
        im -= x * std::sin(omega * static_cast<double>(k));
        win_sum += w;
    }
    // Normalize so a full-scale tone of amplitude A yields A/2 per side bin;
    // the factor 2 folds the negative-frequency half back in.
    const double mag = 2.0 * std::hypot(re, im) / win_sum;
    return mag * mag / 2.0 / load_ohm;
}

double SpectrumAnalyzer::band_power_w(const SampledWaveform& wave, double f_lo_ghz,
                                      double f_hi_ghz, double load_ohm) const {
    if (f_hi_ghz <= f_lo_ghz) {
        throw std::invalid_argument("SpectrumAnalyzer::band_power_w: empty band");
    }
    double acc = 0.0;
    for (double f = f_lo_ghz; f <= f_hi_ghz + 1e-12; f += resolution_) {
        acc += tone_power_w(wave, f, load_ohm);
    }
    return acc;
}

std::vector<std::pair<double, double>> SpectrumAnalyzer::sweep(
    const SampledWaveform& wave, double f_lo_ghz, double f_hi_ghz,
    double load_ohm) const {
    if (f_hi_ghz <= f_lo_ghz) {
        throw std::invalid_argument("SpectrumAnalyzer::sweep: empty band");
    }
    std::vector<std::pair<double, double>> out;
    for (double f = f_lo_ghz; f <= f_hi_ghz + 1e-12; f += resolution_) {
        out.emplace_back(f, tone_power_w(wave, f, load_ohm));
    }
    return out;
}

}  // namespace htd::rf
