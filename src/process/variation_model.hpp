#pragma once
/// \file variation_model.hpp
/// Hierarchical process-variation model and the simulation-vs-silicon
/// discrepancy at the heart of the paper.
///
/// A fabrication process is described by a nominal ProcessPoint, per-
/// parameter standard deviations, an inter-parameter correlation matrix
/// (threshold voltages track oxide thickness, mobilities anti-correlate
/// with it, ...), and a variance split across the lot / wafer / die levels.
/// Devices from the same lot share the lot-level offset — which is exactly
/// why the DUTT PCM sample in the paper covers only a narrow slice of the
/// full process distribution, and why the KMM-calibrated Monte Carlo PCMs
/// (boundary B4) beat the raw DUTT PCMs (boundary B3).
///
/// A *Spice model* of the process is the same generative structure evaluated
/// at a stale operating point: `ProcessShift` expresses how far the actual
/// foundry has drifted (in units of each parameter's sigma) since the model
/// was extracted. Learning the trusted region from un-anchored Monte Carlo
/// data fails precisely because of this drift (boundaries B1/B2).

#include <cstdint>

#include "linalg/matrix.hpp"
#include "process/process_point.hpp"
#include "rng/rng.hpp"

namespace htd::process {

/// How total parameter variance splits across hierarchy levels. Fractions
/// must be non-negative and sum to 1 (checked by ProcessVariationModel).
struct VarianceSplit {
    double lot = 0.45;
    double wafer = 0.25;
    double die = 0.30;

    [[nodiscard]] double sum() const noexcept { return lot + wafer + die; }
};

/// Per-parameter drift of the true foundry operating point away from the
/// Spice model, expressed in sigmas of that parameter.
struct ProcessShift {
    std::array<double, kParamCount> sigmas{};

    [[nodiscard]] double get(Param p) const noexcept {
        return sigmas[static_cast<std::size_t>(p)];
    }
    void set(Param p, double v) noexcept { sigmas[static_cast<std::size_t>(p)] = v; }

    /// A correlated "slow corner" drift: thicker oxide, higher thresholds,
    /// lower mobilities, scaled by `magnitude` (in sigmas).
    [[nodiscard]] static ProcessShift slow_corner(double magnitude);

    /// A correlated "fast corner" drift (opposite signs).
    [[nodiscard]] static ProcessShift fast_corner(double magnitude);
};

/// Generative model of one fabrication process / operating point.
class ProcessVariationModel {
public:
    /// `sigma_fraction[i]` is the standard deviation of parameter i as a
    /// fraction of its nominal magnitude. Throws std::invalid_argument on
    /// inconsistent shapes, a non-unit variance split, or a correlation
    /// matrix that is not symmetric positive definite.
    ProcessVariationModel(ProcessPoint nominal, linalg::Vector sigma_fraction,
                          linalg::Matrix correlation, VarianceSplit split);

    /// Default model of the 350 nm-class process: nominal_350nm(), a few
    /// percent sigma per parameter, physically motivated correlations, and
    /// the default lot/wafer/die split.
    [[nodiscard]] static ProcessVariationModel default_350nm();

    /// The same process observed through a stale Spice model: nominal point
    /// translated by `-shift` relative to this model (equivalently, this
    /// model is the foundry that has drifted by `+shift` since extraction).
    [[nodiscard]] ProcessVariationModel shifted(const ProcessShift& shift) const;

    /// One die sampled with the *full* process variance — what a Spice-level
    /// Monte Carlo across all corners produces.
    [[nodiscard]] ProcessPoint sample_monte_carlo(rng::Rng& rng) const;

    /// `n` Monte Carlo dice stacked as rows (kParamCount columns).
    [[nodiscard]] linalg::Matrix sample_monte_carlo_n(rng::Rng& rng, std::size_t n) const;

    /// A lot-level offset (shared by every wafer in a lot).
    [[nodiscard]] linalg::Vector sample_lot_offset(rng::Rng& rng) const;

    /// A wafer-level offset (shared by every die on a wafer).
    [[nodiscard]] linalg::Vector sample_wafer_offset(rng::Rng& rng) const;

    /// One die within the given lot and wafer context.
    [[nodiscard]] ProcessPoint sample_die(rng::Rng& rng, const linalg::Vector& lot_offset,
                                          const linalg::Vector& wafer_offset) const;

    /// Small within-die (mismatch) perturbation of an existing die point —
    /// used for the several design instances sharing one die. `fraction`
    /// scales the die-level sigma.
    [[nodiscard]] ProcessPoint perturb_within_die(rng::Rng& rng, const ProcessPoint& die,
                                                  double fraction = 0.15) const;

    [[nodiscard]] const ProcessPoint& nominal() const noexcept { return nominal_; }
    [[nodiscard]] const linalg::Vector& sigma() const noexcept { return sigma_abs_; }
    [[nodiscard]] const VarianceSplit& split() const noexcept { return split_; }
    [[nodiscard]] const linalg::Matrix& correlation() const noexcept { return corr_; }

private:
    ProcessVariationModel(ProcessPoint nominal, linalg::Vector sigma_fraction,
                          linalg::Matrix correlation, VarianceSplit split,
                          linalg::Vector sigma_abs);

    [[nodiscard]] rng::MultivariateNormal scaled_mvn(double variance_fraction) const;

    ProcessPoint nominal_;
    linalg::Vector sigma_fraction_;
    linalg::Vector sigma_abs_;
    linalg::Matrix corr_;
    VarianceSplit split_;
};

}  // namespace htd::process
