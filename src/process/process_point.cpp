#include "process/process_point.hpp"

#include <stdexcept>

namespace htd::process {

std::string param_name(Param p) {
    switch (p) {
        case Param::kVthN: return "vth_n";
        case Param::kVthP: return "vth_p";
        case Param::kTox: return "tox";
        case Param::kMuN: return "mu_n";
        case Param::kMuP: return "mu_p";
        case Param::kLeff: return "leff";
        case Param::kRsheet: return "rsheet";
        case Param::kCjScale: return "cj_scale";
    }
    throw std::invalid_argument("param_name: invalid parameter index");
}

linalg::Vector ProcessPoint::to_vector() const {
    linalg::Vector v(kParamCount);
    for (std::size_t i = 0; i < kParamCount; ++i) v[i] = values[i];
    return v;
}

ProcessPoint ProcessPoint::from_vector(const linalg::Vector& v) {
    if (v.size() != kParamCount) {
        throw std::invalid_argument("ProcessPoint::from_vector: dimension mismatch");
    }
    ProcessPoint p;
    for (std::size_t i = 0; i < kParamCount; ++i) p.values[i] = v[i];
    return p;
}

ProcessPoint nominal_350nm() {
    ProcessPoint p;
    p.set(Param::kVthN, 0.55);     // V
    p.set(Param::kVthP, 0.65);     // V (magnitude)
    p.set(Param::kTox, 7.6);       // nm
    p.set(Param::kMuN, 420.0);     // cm^2/Vs
    p.set(Param::kMuP, 140.0);     // cm^2/Vs
    p.set(Param::kLeff, 0.35);     // um
    p.set(Param::kRsheet, 75.0);   // ohm/sq
    p.set(Param::kCjScale, 1.0);   // dimensionless
    return p;
}

double cox_ff_per_um2(double tox_nm) {
    if (tox_nm <= 0.0) throw std::invalid_argument("cox_ff_per_um2: tox <= 0");
    // eps_ox = 3.9 * 8.854e-12 F/m = 34.53e-12 F/m; converting to fF/um^2:
    // Cox [F/m^2] = eps_ox / (tox_nm * 1e-9); 1 F/m^2 = 1e3 fF / 1e12 um^2
    // = 1e3 fF/um^2 per (F/m^2) ... i.e. multiply by 1e3. For tox = 7.6 nm
    // this gives the textbook ~4.5 fF/um^2.
    constexpr double kEpsOx = 3.9 * 8.854e-12;
    return kEpsOx / (tox_nm * 1e-9) * 1e3;
}

}  // namespace htd::process
