#pragma once
/// \file process_point.hpp
/// The physical process-parameter vector of one fabricated die. These are
/// the fundamental quantities a CMOS process's Process Control Monitors
/// (PCMs / e-tests) are designed to track; every circuit-level model in this
/// library (PCM path delay, ring oscillator, UWB power amplifier) is an
/// analytic function of a ProcessPoint, so PCM measurements and side-channel
/// fingerprints share the statistical dependency the paper's regression
/// stage exploits.

#include <array>
#include <cstddef>
#include <string>

#include "linalg/matrix.hpp"

namespace htd::process {

/// Index of a physical process parameter inside a ProcessPoint.
enum class Param : std::size_t {
    kVthN = 0,   ///< NMOS threshold voltage [V]
    kVthP,       ///< PMOS threshold voltage magnitude [V]
    kTox,        ///< gate oxide thickness [nm]
    kMuN,        ///< electron mobility [cm^2/Vs]
    kMuP,        ///< hole mobility [cm^2/Vs]
    kLeff,       ///< effective channel length [um]
    kRsheet,     ///< interconnect sheet resistance [ohm/sq]
    kCjScale,    ///< junction/parasitic capacitance scale [1]
};

/// Number of tracked process parameters.
inline constexpr std::size_t kParamCount = 8;

/// Short name of a parameter ("vth_n", ...); throws on an invalid index.
[[nodiscard]] std::string param_name(Param p);

/// One die's process-parameter vector with named accessors.
struct ProcessPoint {
    std::array<double, kParamCount> values{};

    [[nodiscard]] double get(Param p) const noexcept {
        return values[static_cast<std::size_t>(p)];
    }
    void set(Param p, double v) noexcept { values[static_cast<std::size_t>(p)] = v; }

    [[nodiscard]] double vth_n() const noexcept { return get(Param::kVthN); }
    [[nodiscard]] double vth_p() const noexcept { return get(Param::kVthP); }
    [[nodiscard]] double tox_nm() const noexcept { return get(Param::kTox); }
    [[nodiscard]] double mu_n() const noexcept { return get(Param::kMuN); }
    [[nodiscard]] double mu_p() const noexcept { return get(Param::kMuP); }
    [[nodiscard]] double leff_um() const noexcept { return get(Param::kLeff); }
    [[nodiscard]] double rsheet() const noexcept { return get(Param::kRsheet); }
    [[nodiscard]] double cj_scale() const noexcept { return get(Param::kCjScale); }

    /// Conversion to/from a linalg::Vector for statistical modeling.
    [[nodiscard]] linalg::Vector to_vector() const;
    [[nodiscard]] static ProcessPoint from_vector(const linalg::Vector& v);

    friend bool operator==(const ProcessPoint&, const ProcessPoint&) = default;
};

/// Representative nominal point for the 350 nm-class technology the paper's
/// chips were fabricated in (TSMC 0.35 um): |Vth| around 0.55-0.65 V, 7.6 nm
/// oxide, standard bulk mobilities.
[[nodiscard]] ProcessPoint nominal_350nm();

/// Gate oxide capacitance per area [fF/um^2] for an oxide thickness in nm:
/// Cox = eps_ox / tox. Throws std::invalid_argument when tox <= 0.
[[nodiscard]] double cox_ff_per_um2(double tox_nm);

}  // namespace htd::process
