#include "process/variation_model.hpp"

#include "linalg/decompositions.hpp"

#include <cmath>
#include <stdexcept>

namespace htd::process {

namespace {

/// Covariance matrix from per-parameter sigmas and a correlation matrix,
/// scaled by a variance fraction.
linalg::Matrix make_covariance(const linalg::Vector& sigma_abs,
                               const linalg::Matrix& corr, double fraction) {
    const std::size_t d = sigma_abs.size();
    linalg::Matrix cov(d, d);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            cov(i, j) = fraction * corr(i, j) * sigma_abs[i] * sigma_abs[j];
        }
    }
    return cov;
}

}  // namespace

ProcessShift ProcessShift::slow_corner(double magnitude) {
    ProcessShift s;
    s.set(Param::kVthN, +1.0 * magnitude);
    s.set(Param::kVthP, +0.9 * magnitude);
    s.set(Param::kTox, +0.8 * magnitude);
    s.set(Param::kMuN, -1.2 * magnitude);
    s.set(Param::kMuP, -1.2 * magnitude);
    s.set(Param::kLeff, +0.5 * magnitude);
    s.set(Param::kRsheet, +0.3 * magnitude);
    s.set(Param::kCjScale, +0.2 * magnitude);
    return s;
}

ProcessShift ProcessShift::fast_corner(double magnitude) {
    ProcessShift s = slow_corner(magnitude);
    for (double& v : s.sigmas) v = -v;
    return s;
}

ProcessVariationModel::ProcessVariationModel(ProcessPoint nominal,
                                             linalg::Vector sigma_fraction,
                                             linalg::Matrix correlation,
                                             VarianceSplit split)
    : nominal_(nominal),
      sigma_fraction_(std::move(sigma_fraction)),
      corr_(std::move(correlation)),
      split_(split) {
    if (sigma_fraction_.size() != kParamCount) {
        throw std::invalid_argument("ProcessVariationModel: sigma dimension mismatch");
    }
    if (corr_.rows() != kParamCount || corr_.cols() != kParamCount) {
        throw std::invalid_argument("ProcessVariationModel: correlation shape mismatch");
    }
    if (!corr_.is_symmetric(1e-9)) {
        throw std::invalid_argument("ProcessVariationModel: correlation not symmetric");
    }
    if (std::abs(split_.sum() - 1.0) > 1e-9 || split_.lot < 0.0 || split_.wafer < 0.0 ||
        split_.die < 0.0) {
        throw std::invalid_argument(
            "ProcessVariationModel: variance split must be non-negative and sum to 1");
    }
    for (std::size_t i = 0; i < kParamCount; ++i) {
        if (sigma_fraction_[i] < 0.0) {
            throw std::invalid_argument("ProcessVariationModel: negative sigma");
        }
    }
    sigma_abs_ = linalg::Vector(kParamCount);
    for (std::size_t i = 0; i < kParamCount; ++i) {
        sigma_abs_[i] = sigma_fraction_[i] * std::abs(nominal_.values[i]);
    }
    // Validate positive-definiteness early via a throwaway factorization.
    (void)rng::MultivariateNormal(linalg::Vector(kParamCount),
                                  make_covariance(sigma_abs_, corr_, 1.0));
}

ProcessVariationModel::ProcessVariationModel(ProcessPoint nominal,
                                             linalg::Vector sigma_fraction,
                                             linalg::Matrix correlation,
                                             VarianceSplit split,
                                             linalg::Vector sigma_abs)
    : nominal_(nominal),
      sigma_fraction_(std::move(sigma_fraction)),
      sigma_abs_(std::move(sigma_abs)),
      corr_(std::move(correlation)),
      split_(split) {}

ProcessVariationModel ProcessVariationModel::default_350nm() {
    linalg::Vector sigma(kParamCount);
    sigma[static_cast<std::size_t>(Param::kVthN)] = 0.020;    // 2% of 0.55 V
    sigma[static_cast<std::size_t>(Param::kVthP)] = 0.020;
    sigma[static_cast<std::size_t>(Param::kTox)] = 0.005;
    sigma[static_cast<std::size_t>(Param::kMuN)] = 0.070;
    sigma[static_cast<std::size_t>(Param::kMuP)] = 0.070;
    sigma[static_cast<std::size_t>(Param::kLeff)] = 0.008;
    sigma[static_cast<std::size_t>(Param::kRsheet)] = 0.010;
    sigma[static_cast<std::size_t>(Param::kCjScale)] = 0.010;

    // Physically motivated correlation structure: both thresholds ride on
    // oxide thickness; the mobilities move together with the thermal budget
    // and dominate both drive current and amplifier gain; channel length
    // couples weakly through lithography.
    linalg::Matrix corr = linalg::Matrix::identity(kParamCount);
    auto set = [&corr](Param a, Param b, double rho) {
        corr(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) = rho;
        corr(static_cast<std::size_t>(b), static_cast<std::size_t>(a)) = rho;
    };
    set(Param::kVthN, Param::kVthP, 0.75);
    set(Param::kVthN, Param::kTox, 0.40);
    set(Param::kVthP, Param::kTox, 0.40);
    set(Param::kMuN, Param::kMuP, 0.98);
    set(Param::kMuN, Param::kTox, -0.15);
    set(Param::kMuP, Param::kTox, -0.15);
    set(Param::kMuN, Param::kVthN, -0.15);
    set(Param::kMuP, Param::kVthP, -0.15);
    set(Param::kLeff, Param::kVthN, 0.15);
    set(Param::kLeff, Param::kVthP, 0.15);
    set(Param::kRsheet, Param::kCjScale, 0.15);

    // Hand-set entries can be slightly indefinite as a whole; repair to the
    // nearest valid correlation matrix before constructing the model.
    corr = linalg::nearest_correlation_matrix(corr);

    return {nominal_350nm(), sigma, corr, VarianceSplit{}};
}

ProcessVariationModel ProcessVariationModel::shifted(const ProcessShift& shift) const {
    ProcessPoint moved = nominal_;
    for (std::size_t i = 0; i < kParamCount; ++i) {
        moved.values[i] += shift.sigmas[i] * sigma_abs_[i];
    }
    // Keep the original absolute sigmas: process spread is a property of the
    // technology, not of where the operating point currently sits.
    return {moved, sigma_fraction_, corr_, split_, sigma_abs_};
}

rng::MultivariateNormal ProcessVariationModel::scaled_mvn(double variance_fraction) const {
    return {linalg::Vector(kParamCount),
            make_covariance(sigma_abs_, corr_, variance_fraction)};
}

ProcessPoint ProcessVariationModel::sample_monte_carlo(rng::Rng& rng) const {
    const linalg::Vector offset = scaled_mvn(1.0).sample(rng);
    ProcessPoint p = nominal_;
    for (std::size_t i = 0; i < kParamCount; ++i) p.values[i] += offset[i];
    return p;
}

linalg::Matrix ProcessVariationModel::sample_monte_carlo_n(rng::Rng& rng,
                                                           std::size_t n) const {
    linalg::Matrix out(n, kParamCount);
    for (std::size_t r = 0; r < n; ++r) {
        out.set_row(r, sample_monte_carlo(rng).to_vector());
    }
    return out;
}

linalg::Vector ProcessVariationModel::sample_lot_offset(rng::Rng& rng) const {
    if (split_.lot == 0.0) return linalg::Vector(kParamCount);
    return scaled_mvn(split_.lot).sample(rng);
}

linalg::Vector ProcessVariationModel::sample_wafer_offset(rng::Rng& rng) const {
    if (split_.wafer == 0.0) return linalg::Vector(kParamCount);
    return scaled_mvn(split_.wafer).sample(rng);
}

ProcessPoint ProcessVariationModel::sample_die(rng::Rng& rng,
                                               const linalg::Vector& lot_offset,
                                               const linalg::Vector& wafer_offset) const {
    if (lot_offset.size() != kParamCount || wafer_offset.size() != kParamCount) {
        throw std::invalid_argument("sample_die: offset dimension mismatch");
    }
    linalg::Vector die_offset = split_.die > 0.0
                                    ? scaled_mvn(split_.die).sample(rng)
                                    : linalg::Vector(kParamCount);
    ProcessPoint p = nominal_;
    for (std::size_t i = 0; i < kParamCount; ++i) {
        p.values[i] += lot_offset[i] + wafer_offset[i] + die_offset[i];
    }
    return p;
}

ProcessPoint ProcessVariationModel::perturb_within_die(rng::Rng& rng,
                                                       const ProcessPoint& die,
                                                       double fraction) const {
    if (fraction < 0.0) throw std::invalid_argument("perturb_within_die: fraction < 0");
    ProcessPoint p = die;
    if (fraction == 0.0) return p;
    const linalg::Vector offset =
        scaled_mvn(split_.die * fraction * fraction).sample(rng);
    for (std::size_t i = 0; i < kParamCount; ++i) p.values[i] += offset[i];
    return p;
}

}  // namespace htd::process
