#include "core/errors.hpp"

namespace htd::core {

std::string pipeline_error_code_name(PipelineErrorCode code) {
    switch (code) {
        case PipelineErrorCode::kConfig: return "config";
        case PipelineErrorCode::kStageOrder: return "stage_order";
        case PipelineErrorCode::kDimensionMismatch: return "dimension_mismatch";
        case PipelineErrorCode::kDataQuality: return "data_quality";
        case PipelineErrorCode::kBoundaryUnavailable: return "boundary_unavailable";
        case PipelineErrorCode::kCalibrationCollapse: return "calibration_collapse";
        case PipelineErrorCode::kArtifact: return "artifact";
    }
    return "unknown";
}

std::string PipelineError::format_message(PipelineErrorCode code,
                                          const std::string& message) {
    const std::string name = pipeline_error_code_name(code);
    std::string out;
    out.reserve(name.size() + message.size() + 3);
    out += '[';
    out += name;
    out += "] ";
    out += message;
    return out;
}

}  // namespace htd::core
