#include "core/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/span.hpp"

namespace htd::core {

namespace {

std::size_t index_of(Boundary b) { return static_cast<std::size_t>(b); }

}  // namespace

std::string boundary_name(Boundary b) {
    switch (b) {
        case Boundary::kB1: return "B1";
        case Boundary::kB2: return "B2";
        case Boundary::kB3: return "B3";
        case Boundary::kB4: return "B4";
        case Boundary::kB5: return "B5";
    }
    throw std::invalid_argument("boundary_name: unknown boundary");
}

std::string dataset_name(Boundary b) {
    std::string n = boundary_name(b);
    n[0] = 'S';
    return n;
}

GoldenFreePipeline::GoldenFreePipeline(PipelineConfig config,
                                       silicon::SpiceSimulator simulator)
    : config_(config), simulator_(std::move(simulator)), regressions_(config.mars) {
    if (config_.monte_carlo_samples < 2) {
        throw std::invalid_argument("GoldenFreePipeline: need >= 2 Monte Carlo samples");
    }
    if (config_.synthetic_samples == 0) {
        throw std::invalid_argument("GoldenFreePipeline: zero synthetic samples");
    }
    obs::Registry::global().configure(config_.obs);
}

linalg::Matrix GoldenFreePipeline::transform_pcms(const linalg::Matrix& pcms) const {
    if (!config_.log_transform_pcm) return pcms;
    linalg::Matrix out = pcms;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        auto row = out.row_span(r);
        for (double& v : row) {
            if (v <= 0.0) {
                throw std::invalid_argument(
                    "GoldenFreePipeline: log transform requires positive PCM values");
            }
            v = std::log(v);
        }
    }
    return out;
}

ml::OneClassSvm GoldenFreePipeline::train_boundary(const linalg::Matrix& dataset) const {
    ml::OneClassSvm svm(config_.svm);
    svm.fit(dataset);
    return svm;
}

linalg::Matrix GoldenFreePipeline::kde_enhance(const linalg::Matrix& source,
                                               rng::Rng& rng) const {
    switch (config_.tail_model) {
        case TailModel::kAdaptiveKde: {
            const stats::AdaptiveKde kde(source, config_.kde_alpha,
                                         config_.kde_bandwidth, config_.kde_kernel,
                                         config_.kde_max_lambda);
            return kde.sample_n(rng, config_.synthetic_samples);
        }
        case TailModel::kEvtPot: {
            const stats::EvtTailEnhancer evt(source, config_.evt_tail_fraction);
            return evt.sample_n(rng, config_.synthetic_samples);
        }
    }
    throw std::invalid_argument("GoldenFreePipeline: unknown tail model");
}

void GoldenFreePipeline::run_premanufacturing(rng::Rng& rng) {
    obs::ScopedSpan stage("pipeline.stage1_premanufacturing");
    stage.attr("monte_carlo_samples", static_cast<double>(config_.monte_carlo_samples));

    linalg::Matrix golden_fingerprints;
    {
        obs::ScopedSpan span("pipeline.monte_carlo");
        const silicon::SpiceSimulator::GoldenData golden =
            simulator_.simulate_golden(rng, config_.monte_carlo_samples);
        mc_pcms_ = transform_pcms(golden.pcms);
        golden_fingerprints = golden.fingerprints;
        span.attr("pcm_dim", static_cast<double>(mc_pcms_.cols()));
        span.attr("fingerprint_dim", static_cast<double>(golden_fingerprints.cols()));
    }
    obs::Registry::global().counter_add("pipeline.monte_carlo_devices",
                                        static_cast<double>(mc_pcms_.rows()));

    // Regression bank g_j : m_p -> m_j on the simulated devices.
    regressions_ = ml::MarsBank(config_.mars);
    regressions_.fit(mc_pcms_, golden_fingerprints);

    // S1 / B1: raw simulated fingerprints.
    datasets_[index_of(Boundary::kB1)] = golden_fingerprints;
    boundaries_[index_of(Boundary::kB1)] = train_boundary(golden_fingerprints);

    // S2 / B2: tail-enhanced synthetic population.
    datasets_[index_of(Boundary::kB2)] = kde_enhance(golden_fingerprints, rng);
    boundaries_[index_of(Boundary::kB2)] =
        train_boundary(datasets_[index_of(Boundary::kB2)]);

    premanufacturing_done_ = true;
}

void GoldenFreePipeline::run_silicon_stage(const linalg::Matrix& dutt_pcms,
                                           rng::Rng& rng) {
    if (!premanufacturing_done_) {
        throw std::logic_error("run_silicon_stage: pre-manufacturing stage has not run");
    }
    if (dutt_pcms.cols() != mc_pcms_.cols()) {
        throw std::invalid_argument("run_silicon_stage: PCM dimension mismatch");
    }
    if (dutt_pcms.rows() == 0) {
        throw std::invalid_argument("run_silicon_stage: no DUTT PCM measurements");
    }
    obs::ScopedSpan stage("pipeline.stage2_silicon");
    stage.attr("dutt_devices", static_cast<double>(dutt_pcms.rows()));
    obs::Registry::global().counter_add("pipeline.dutt_devices",
                                        static_cast<double>(dutt_pcms.rows()));
    const linalg::Matrix silicon_pcms = transform_pcms(dutt_pcms);

    // S3 / B3: golden fingerprints predicted from the measured silicon PCMs.
    datasets_[index_of(Boundary::kB3)] = regressions_.predict_batch(silicon_pcms);
    boundaries_[index_of(Boundary::kB3)] =
        train_boundary(datasets_[index_of(Boundary::kB3)]);

    // S4 / B4: simulated PCMs calibrated to the silicon operating point by
    // kernel mean shift; the KMM importance weights then resample the
    // calibrated cloud onto the silicon distribution (m''_p), and the
    // regression bank maps it to fingerprints.
    const ml::KernelMeanShiftCalibrator calibrator(config_.calibration);
    calibration_ = calibrator.calibrate(mc_pcms_, silicon_pcms);
    const linalg::Matrix calibrated_pcms = ml::weighted_resample(
        calibration_->calibrated, calibration_->weights,
        config_.monte_carlo_samples, rng);
    datasets_[index_of(Boundary::kB4)] = regressions_.predict_batch(calibrated_pcms);
    boundaries_[index_of(Boundary::kB4)] =
        train_boundary(datasets_[index_of(Boundary::kB4)]);

    // S5 / B5: tail-enhanced version of S4.
    datasets_[index_of(Boundary::kB5)] =
        kde_enhance(datasets_[index_of(Boundary::kB4)], rng);
    boundaries_[index_of(Boundary::kB5)] =
        train_boundary(datasets_[index_of(Boundary::kB5)]);

    silicon_done_ = true;
}

bool GoldenFreePipeline::boundary_ready(Boundary b) const noexcept {
    switch (b) {
        case Boundary::kB1:
        case Boundary::kB2:
            return premanufacturing_done_;
        case Boundary::kB3:
        case Boundary::kB4:
        case Boundary::kB5:
            return silicon_done_;
    }
    return false;
}

const ml::OneClassSvm& GoldenFreePipeline::svm_for(Boundary b) const {
    if (!boundary_ready(b)) {
        throw std::logic_error("GoldenFreePipeline: boundary " + boundary_name(b) +
                               " has not been trained yet");
    }
    return boundaries_[index_of(b)];
}

std::vector<bool> GoldenFreePipeline::classify(Boundary b,
                                               const linalg::Matrix& fingerprints) const {
    const ml::OneClassSvm& svm = svm_for(b);
    obs::ScopedSpan span("pipeline.stage3_classify");
    span.attr("boundary", static_cast<double>(index_of(b)) + 1.0);  // 1 = B1
    span.attr("devices", static_cast<double>(fingerprints.rows()));
    std::vector<bool> inside(fingerprints.rows());
    std::size_t accepted = 0;
    for (std::size_t r = 0; r < fingerprints.rows(); ++r) {
        inside[r] = svm.contains(fingerprints.row(r));
        accepted += inside[r] ? 1 : 0;
    }
    span.attr("accepted", static_cast<double>(accepted));
    obs::Registry::global().counter_add("pipeline.devices_classified",
                                        static_cast<double>(fingerprints.rows()));
    return inside;
}

linalg::Vector GoldenFreePipeline::decision_values(
    Boundary b, const linalg::Matrix& fingerprints) const {
    return svm_for(b).decision_values(fingerprints);
}

ml::DetectionMetrics GoldenFreePipeline::evaluate(
    Boundary b, const silicon::DuttDataset& dutts) const {
    const std::vector<bool> inside = classify(b, dutts.fingerprints);
    const std::vector<ml::DeviceLabel> labels = dutts.labels();
    return ml::evaluate_detection(inside, labels);
}

const linalg::Matrix& GoldenFreePipeline::dataset(Boundary b) const {
    if (!boundary_ready(b)) {
        throw std::logic_error("GoldenFreePipeline: dataset " + dataset_name(b) +
                               " has not been built yet");
    }
    return datasets_[index_of(b)];
}

const ml::MarsBank& GoldenFreePipeline::regressions() const {
    if (!premanufacturing_done_) {
        throw std::logic_error("GoldenFreePipeline: regressions not trained yet");
    }
    return regressions_;
}

const linalg::Matrix& GoldenFreePipeline::simulated_pcms() const {
    if (!premanufacturing_done_) {
        throw std::logic_error("GoldenFreePipeline: pre-manufacturing stage has not run");
    }
    return mc_pcms_;
}

// --- GoldenChipBaseline -----------------------------------------------------------

GoldenChipBaseline::GoldenChipBaseline(ml::OneClassSvm::Options svm_opts)
    : svm_(svm_opts) {}

void GoldenChipBaseline::fit(const linalg::Matrix& golden_fingerprints) {
    obs::ScopedSpan span("baseline.fit");
    span.attr("golden_devices", static_cast<double>(golden_fingerprints.rows()));
    svm_.fit(golden_fingerprints);
}

std::vector<bool> GoldenChipBaseline::classify(const linalg::Matrix& fingerprints) const {
    obs::ScopedSpan span("baseline.classify");
    span.attr("devices", static_cast<double>(fingerprints.rows()));
    std::vector<bool> inside(fingerprints.rows());
    for (std::size_t r = 0; r < fingerprints.rows(); ++r) {
        inside[r] = svm_.contains(fingerprints.row(r));
    }
    return inside;
}

ml::DetectionMetrics GoldenChipBaseline::evaluate(
    const silicon::DuttDataset& dutts) const {
    const std::vector<bool> inside = classify(dutts.fingerprints);
    const std::vector<ml::DeviceLabel> labels = dutts.labels();
    return ml::evaluate_detection(inside, labels);
}

}  // namespace htd::core
