#pragma once
/// \file stable_sum.hpp
/// Order-stable floating-point reduction helpers.
///
/// Naive left-to-right `+=` reductions are the main obstacle to running
/// the statistical hot loops (KMM Gram sums, KDE kernel evaluations, the
/// Monte Carlo power accumulation) across threads: FP addition is not
/// associative, so any change in accumulation order — a different thread
/// count, a reordered chunk merge — shifts the last ulps and breaks the
/// bitwise artifact/score parity the golden-free pipeline promises
/// (DESIGN.md §16). These helpers pin the summation semantics instead:
///
///  - `StableAccumulator` — Neumaier-compensated (improved Kahan)
///    running sum. Sequential like a naive `+=` but tracks the rounding
///    error of every addition in a compensation term, so the result is
///    accurate to ~1 ulp of the true sum even under catastrophic
///    cancellation, and — crucially — is a *defined* function of the
///    input sequence that a future parallel merge can reproduce by
///    combining per-chunk (sum, compensation) pairs in fixed order.
///  - `stable_sum(span)` — pairwise (cascade) summation over a
///    materialized range. Error grows O(log n) instead of O(n), and the
///    reduction tree depends only on `n`, never on thread schedule.
///
/// htd_lint's `float-reduction-order` pass rejects naive `+=` /
/// `std::accumulate` FP reductions inside `HTD_PARALLEL_READY` regions;
/// these helpers are the sanctioned replacement.

#include <cstddef>
#include <span>

namespace htd::core {

/// Neumaier-compensated running sum (Kahan variant that also handles the
/// case where the incoming term is larger than the running sum). Usage
/// mirrors a naive accumulator:
///
///     StableAccumulator acc;
///     for (double x : xs) acc.add(x);
///     double total = acc.value();
class StableAccumulator {
public:
    constexpr StableAccumulator() = default;

    /// Adds one term, folding its rounding error into the compensation.
    constexpr void add(double x) noexcept {
        const double t = sum_ + x;
        // The larger-magnitude operand donates the exactly-representable
        // residue of the addition (Neumaier's refinement over Kahan).
        const double abs_sum = sum_ < 0.0 ? -sum_ : sum_;
        const double abs_x = x < 0.0 ? -x : x;
        if (abs_sum >= abs_x) {
            comp_ += (sum_ - t) + x;
        } else {
            comp_ += (x - t) + sum_;
        }
        sum_ = t;
    }

    /// The compensated sum of everything added so far.
    [[nodiscard]] constexpr double value() const noexcept { return sum_ + comp_; }

private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

namespace detail {

/// Recursive pairwise reduction; the split point depends only on the
/// length, so the tree shape (and therefore the rounding) is a pure
/// function of `n`.
[[nodiscard]] constexpr double pairwise_sum(std::span<const double> xs) noexcept {
    constexpr std::size_t kLeaf = 8;  // naive below this; error still O(log n)
    if (xs.size() <= kLeaf) {
        double acc = 0.0;
        for (const double x : xs) acc += x;
        return acc;
    }
    const std::size_t half = xs.size() / 2;
    return pairwise_sum(xs.first(half)) + pairwise_sum(xs.subspan(half));
}

}  // namespace detail

/// Pairwise (cascade) sum of a materialized range. Deterministic for a
/// given input sequence regardless of how callers are scheduled; error
/// bound O(eps·log n) vs O(eps·n) for a naive loop.
[[nodiscard]] constexpr double stable_sum(std::span<const double> xs) noexcept {
    return detail::pairwise_sum(xs);
}

}  // namespace htd::core
