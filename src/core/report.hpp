#pragma once
/// \file report.hpp
/// Machine-readable experiment report: serializes an ExperimentResult (and
/// the configuration that produced it) to JSON for archiving, regression
/// tracking or external plotting. Used by the audit example.

#include <string>

#include "core/experiment.hpp"
#include "io/json.hpp"

namespace htd::core {

/// Build the JSON document for one experiment run. Includes the per-boundary
/// Table-1 metrics, the golden-chip baseline, diagnostics, the key
/// configuration knobs, and (optionally) the measured per-device data.
[[nodiscard]] io::Json experiment_report(const ExperimentConfig& config,
                                         const ExperimentResult& result,
                                         bool include_measurements = false);

/// Convenience: build and write the report; throws std::runtime_error on IO
/// failure.
void write_experiment_report(const std::string& path, const ExperimentConfig& config,
                             const ExperimentResult& result,
                             bool include_measurements = false);

}  // namespace htd::core
