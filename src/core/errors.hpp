#pragma once
/// \file errors.hpp
/// Typed error hierarchy of the detection pipeline. Every failure the
/// pipeline and the ingestion layer can signal carries a machine-readable
/// `PipelineErrorCode`, so callers can distinguish misuse (stage ordering,
/// dimension mismatches) from data problems (non-finite measurements, a
/// rejected lot) and from statistical degradation (a collapsed KMM
/// calibration) — and react differently: misuse is a bug, data problems
/// call for re-measurement, degradation for falling back to a healthier
/// boundary.

#include <stdexcept>
#include <string>

namespace htd::core {

/// Machine-readable failure category.
enum class PipelineErrorCode {
    kConfig,               ///< invalid configuration value
    kStageOrder,           ///< stages invoked out of order
    kDimensionMismatch,    ///< matrix shape disagrees with the trained model
    kDataQuality,          ///< non-finite / out-of-range / rejected measurements
    kBoundaryUnavailable,  ///< requested boundary not trained or failed
    kCalibrationCollapse,  ///< KMM effective sample size below the floor
    kArtifact,             ///< persisted boundary artifact invalid or corrupt
};

/// Stable short name of a code ("config", "stage_order", ...).
[[nodiscard]] std::string pipeline_error_code_name(PipelineErrorCode code);

/// Base of every pipeline failure. Derives from std::runtime_error so
/// legacy catch sites keep working; prefer catching the subtypes below.
class PipelineError : public std::runtime_error {
public:
    PipelineError(PipelineErrorCode code, const std::string& message)
        : std::runtime_error(format_message(code, message)), code_(code) {}

    [[nodiscard]] PipelineErrorCode code() const noexcept { return code_; }

private:
    /// Out-of-line "[code] message" formatting: keeps the std::string
    /// concatenation out of every throw site (GCC 12 -O2 emits spurious
    /// -Wrestrict for inlined operator+ chains, PR 105329) and builds the
    /// message with appends instead of temporaries.
    static std::string format_message(PipelineErrorCode code,
                                      const std::string& message);

    PipelineErrorCode code_;
};

/// A configuration value is invalid (rejected at construction time).
class ConfigError : public PipelineError {
public:
    explicit ConfigError(const std::string& message)
        : PipelineError(PipelineErrorCode::kConfig, message) {}
};

/// A stage was invoked before its prerequisite stage completed.
class StageOrderError : public PipelineError {
public:
    explicit StageOrderError(const std::string& message)
        : PipelineError(PipelineErrorCode::kStageOrder, message) {}
};

/// An input matrix's shape disagrees with what the trained models expect.
class DimensionError : public PipelineError {
public:
    explicit DimensionError(const std::string& message)
        : PipelineError(PipelineErrorCode::kDimensionMismatch, message) {}
};

/// Measurements are unusable: non-finite values, physical-range violations,
/// or a lot rejected by the ingestion quarantine.
class DataQualityError : public PipelineError {
public:
    explicit DataQualityError(const std::string& message)
        : PipelineError(PipelineErrorCode::kDataQuality, message) {}
};

/// The requested boundary has not been trained, or its training failed.
class BoundaryUnavailableError : public PipelineError {
public:
    explicit BoundaryUnavailableError(const std::string& message)
        : PipelineError(PipelineErrorCode::kBoundaryUnavailable, message) {}
};

/// The KMM calibration weights collapsed: their Kish effective sample size
/// fell below the configured floor and the B4->B3 fallback was disabled.
class CalibrationCollapseError : public PipelineError {
public:
    CalibrationCollapseError(const std::string& message, double effective_sample_size,
                             double floor)
        : PipelineError(PipelineErrorCode::kCalibrationCollapse, message),
          ess_(effective_sample_size),
          floor_(floor) {}

    /// Kish effective sample size the calibration actually achieved.
    [[nodiscard]] double effective_sample_size() const noexcept { return ess_; }

    /// The configured floor it fell below.
    [[nodiscard]] double floor() const noexcept { return floor_; }

private:
    double ess_;
    double floor_;
};

}  // namespace htd::core
