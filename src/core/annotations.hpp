#pragma once
/// \file annotations.hpp
/// Clang thread-safety analysis macros plus the annotated `Mutex` /
/// `MutexLock` wrappers the concurrency-sensitive layers (htd::obs first)
/// use instead of raw `std::mutex` / `std::lock_guard`.
///
/// Under Clang, `-Wthread-safety` statically proves lock discipline: a
/// member declared `HTD_GUARDED_BY(mutex_)` cannot be touched unless the
/// compiler can see `mutex_` held on every path, and a helper declared
/// `HTD_REQUIRES(mutex_)` cannot be called without it. Under GCC (this
/// repo's default toolchain) every macro expands to nothing and `Mutex`
/// degrades to a plain `std::mutex` wrapper with identical runtime
/// behavior, so annotated code builds everywhere while the `tidy` /
/// Clang-based presets get the proof. See DESIGN.md §11.
///
/// The std:: primitives themselves carry no capability attributes under
/// libstdc++, which is why the wrappers exist: annotating `std::mutex`
/// members directly would make Clang report false positives at every
/// `std::lock_guard` (the analysis cannot see through an unannotated
/// guard type).

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define HTD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HTD_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a capability ("mutex") the analysis can track.
#define HTD_CAPABILITY(x) HTD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define HTD_SCOPED_CAPABILITY HTD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define HTD_GUARDED_BY(x) HTD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define HTD_PT_GUARDED_BY(x) HTD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define HTD_ACQUIRE(...) HTD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define HTD_RELEASE(...) HTD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function may only be called while holding the capability.
#define HTD_REQUIRES(...) HTD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function may only be called while *not* holding the capability
/// (self-deadlock guard for public entry points).
#define HTD_EXCLUDES(...) HTD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define HTD_TRY_ACQUIRE(ret, ...) \
    HTD_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define HTD_RETURN_CAPABILITY(x) HTD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress the analysis inside one function (vetted
/// single-threaded or init-order code only; every use needs a comment).
#define HTD_NO_THREAD_SAFETY_ANALYSIS HTD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Audited shared mutable state. htd_lint's `global-mutable-state` pass
/// flags every namespace-scope or function-local `static` /
/// `thread_local` mutable variable in src/ and tools/ unless the
/// declarator carries this annotation with a non-empty justification:
///
///     static Registry instance HTD_SHARED_STATE_OK("process singleton");
///
/// The macro expands to nothing — it exists for the analyzer, which
/// surfaces every surviving justification in the htd_lint.v3 JSON report
/// so the audit trail cannot silently rot. See DESIGN.md §16.
#define HTD_SHARED_STATE_OK(reason)

/// Marks the statement *after* it (a `for` / `while` loop, including its
/// body) as a region the item-2 threading work may parallelize. Inside a
/// marked region htd_lint enforces the determinism contracts threading
/// depends on: no naive floating-point `+=` / `std::accumulate`
/// reductions (`float-reduction-order` — use core::stable_sum /
/// core::StableAccumulator, whose summation order is fixed) and no single
/// RNG engine feeding multiple call sites (`rng-discipline` — per-thread
/// substreams via Rng::split are required first). Usage:
///
///     HTD_PARALLEL_READY;
///     for (std::size_t i = 0; i < n; ++i) { ... }
///
/// Expands to a no-op static_assert so the marker costs nothing and
/// cannot be misplaced where a statement is illegal. See DESIGN.md §16.
#define HTD_PARALLEL_READY \
    static_assert(true, "htd_lint: parallel-ready region marker")

namespace htd::core {

/// `std::mutex` with thread-safety capability annotations. Same cost and
/// semantics as the raw primitive; exists so Clang's analysis can track
/// acquire/release through it (see file comment).
class HTD_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() HTD_ACQUIRE() { impl_.lock(); }
    void unlock() HTD_RELEASE() { impl_.unlock(); }
    [[nodiscard]] bool try_lock() HTD_TRY_ACQUIRE(true) { return impl_.try_lock(); }

private:
    std::mutex impl_;
};

/// RAII lock for `Mutex` — the annotated stand-in for
/// `std::lock_guard<std::mutex>`.
class HTD_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) HTD_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() HTD_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

}  // namespace htd::core
