/// Statistical health monitor (htd::obs v2): exported two-sample statistics
/// against offline-computed references, drift-detector behavior on synthetic
/// batches, probe thresholds, pipeline wiring, and the committed quickstart
/// artifact.

#include "obs/health.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/journal.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "io/json.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace {

using namespace htd;
using obs::HealthLevel;
using obs::HealthMonitor;
using obs::ProbeResult;

TEST(HealthLevel, NamesRoundTrip) {
    for (const HealthLevel level :
         {HealthLevel::kHealthy, HealthLevel::kWarn, HealthLevel::kDegraded,
          HealthLevel::kCritical}) {
        EXPECT_EQ(obs::health_level_from_name(obs::health_level_name(level)), level);
    }
    EXPECT_THROW((void)obs::health_level_from_name("bogus"), std::invalid_argument);
    EXPECT_EQ(obs::worse(HealthLevel::kWarn, HealthLevel::kDegraded),
              HealthLevel::kDegraded);
    EXPECT_EQ(obs::worse(HealthLevel::kCritical, HealthLevel::kHealthy),
              HealthLevel::kCritical);
}

// --- two-sample statistics vs offline references ----------------------------

TEST(TwoSampleStats, KsStatisticMatchesOfflineReference) {
    // Reference computed offline by walking the pooled empirical CDFs:
    // D = sup |F_a - F_b| = 2/7 for these samples.
    const std::vector<double> a{0.12, 0.55, 0.93, 1.40, 2.10, 2.75, 3.30};
    const std::vector<double> b{0.30, 0.95, 1.15, 1.85, 2.60};
    EXPECT_NEAR(obs::ks_statistic(a, b), 0.2857142857142857, 1e-12);
    EXPECT_NEAR(obs::scaled_ks_statistic(0.2857142857142857, a.size(), b.size()),
                0.48795003647426655, 1e-12);
    // Symmetry and the identical-sample case.
    EXPECT_NEAR(obs::ks_statistic(b, a), 0.2857142857142857, 1e-12);
    EXPECT_EQ(obs::ks_statistic(a, a), 0.0);
    EXPECT_THROW((void)obs::ks_statistic({}, a), std::invalid_argument);
    EXPECT_THROW((void)obs::scaled_ks_statistic(0.5, 0, 3), std::invalid_argument);
}

TEST(TwoSampleStats, KsStatisticDisjointSupportsIsOne) {
    const std::vector<double> lo{0.0, 0.1, 0.2};
    const std::vector<double> hi{5.0, 5.1, 5.2, 5.3};
    EXPECT_NEAR(obs::ks_statistic(lo, hi), 1.0, 1e-12);
}

TEST(TwoSampleStats, EnergyDistanceMatchesOfflineReference) {
    // V-statistic estimate computed offline for these row sets.
    const linalg::Matrix a{{0.0, 0.0}, {1.0, 0.5}, {2.0, 1.5}, {0.5, 2.0}};
    const linalg::Matrix b{{0.5, 0.25}, {1.5, 1.0}, {2.5, 2.0}};
    EXPECT_NEAR(obs::energy_distance(a, b), 0.4490105346972, 1e-10);
    EXPECT_NEAR(obs::energy_coefficient(a, b), 0.15410684218537768, 1e-10);
    // Identical samples agree exactly; mismatched shapes are rejected.
    EXPECT_NEAR(obs::energy_distance(a, a), 0.0, 1e-12);
    EXPECT_EQ(obs::energy_coefficient(a, a), 0.0);
    const linalg::Matrix one_col{{1.0}, {2.0}};
    EXPECT_THROW((void)obs::energy_distance(a, one_col), std::invalid_argument);
    EXPECT_EQ(obs::energy_coefficient(a, one_col), 0.0);
}

TEST(TwoSampleStats, KishEssAndEntropy) {
    const std::vector<double> uniform(8, 0.25);
    EXPECT_NEAR(obs::kish_ess(uniform), 8.0, 1e-12);
    EXPECT_NEAR(obs::weight_entropy_ratio(uniform), 1.0, 1e-12);

    std::vector<double> collapsed(8, 0.0);
    collapsed[3] = 5.0;
    EXPECT_NEAR(obs::kish_ess(collapsed), 1.0, 1e-12);
    EXPECT_NEAR(obs::weight_entropy_ratio(collapsed), 0.0, 1e-12);

    EXPECT_EQ(obs::kish_ess({}), 0.0);
    EXPECT_EQ(obs::weight_entropy_ratio({}), 0.0);
}

// --- drift detector on synthetic batches ------------------------------------

linalg::Matrix gaussian_batch(rng::Rng& rng, std::size_t n, double mean,
                              double sigma) {
    linalg::Matrix out(n, 2);
    for (std::size_t r = 0; r < n; ++r) {
        out(r, 0) = rng.normal(mean, sigma);
        out(r, 1) = rng.normal(mean * 0.5, sigma * 2.0);
    }
    return out;
}

TEST(DriftProbe, SameDistributionStaysBelowWarn) {
    rng::Rng rng(0xd21f7'5eedULL);
    const linalg::Matrix reference = gaussian_batch(rng, 500, 1.0, 0.3);
    const linalg::Matrix incoming = gaussian_batch(rng, 500, 1.0, 0.3);
    const HealthMonitor monitor;
    const ProbeResult probe = monitor.probe_drift("drift.test", reference, incoming);
    EXPECT_EQ(probe.level, HealthLevel::kHealthy) << probe.detail;
}

TEST(DriftProbe, MeanShiftTripsCritical) {
    rng::Rng rng(0xd21f7'5eedULL);
    const linalg::Matrix reference = gaussian_batch(rng, 500, 1.0, 0.3);
    linalg::Matrix incoming = gaussian_batch(rng, 500, 1.0, 0.3);
    for (std::size_t r = 0; r < incoming.rows(); ++r) {
        incoming(r, 0) += 0.45;  // 1.5 sigma mean shift on channel 0
    }
    const HealthMonitor monitor;
    const ProbeResult probe = monitor.probe_drift("drift.test", reference, incoming);
    EXPECT_EQ(probe.level, HealthLevel::kCritical) << probe.detail;
}

TEST(DriftProbe, VarianceInflationTripsCritical) {
    rng::Rng rng(0xd21f7'5eedULL);
    const linalg::Matrix reference = gaussian_batch(rng, 500, 1.0, 0.3);
    const linalg::Matrix incoming = gaussian_batch(rng, 500, 1.0, 0.9);
    const HealthMonitor monitor;
    const ProbeResult probe = monitor.probe_drift("drift.test", reference, incoming);
    EXPECT_EQ(probe.level, HealthLevel::kCritical) << probe.detail;
}

TEST(DriftProbe, EmitsPerChannelStatistics) {
    rng::Rng rng(1);
    const linalg::Matrix reference = gaussian_batch(rng, 60, 0.0, 1.0);
    const linalg::Matrix incoming = gaussian_batch(rng, 40, 0.0, 1.0);
    const HealthMonitor monitor;
    const ProbeResult probe = monitor.probe_drift("drift.test", reference, incoming);
    bool saw_ks_ch0 = false;
    bool saw_ks_ch1 = false;
    bool saw_energy = false;
    for (const auto& [key, value] : probe.values) {
        if (key == "ks_ch0") saw_ks_ch0 = true;
        if (key == "ks_ch1") saw_ks_ch1 = true;
        if (key == "energy_distance") {
            saw_energy = true;
            EXPECT_GE(value, 0.0);
        }
    }
    EXPECT_TRUE(saw_ks_ch0);
    EXPECT_TRUE(saw_ks_ch1);
    EXPECT_TRUE(saw_energy);
    EXPECT_EQ(probe.values.front().first, "channels");
}

TEST(DriftProbe, DegenerateInputsAreCritical) {
    const HealthMonitor monitor;
    const linalg::Matrix some{{1.0, 2.0}};
    const ProbeResult probe = monitor.probe_drift("drift.test", some, linalg::Matrix{});
    EXPECT_EQ(probe.level, HealthLevel::kCritical);
}

// --- other probes ------------------------------------------------------------

TEST(KmmProbe, UniformWeightsHealthyCollapsedCritical) {
    const HealthMonitor monitor;
    const std::vector<double> uniform(100, 1.0);
    EXPECT_EQ(monitor.probe_kmm_weights(uniform).level, HealthLevel::kHealthy);

    std::vector<double> collapsed(100, 1e-9);
    collapsed[0] = 5.0;
    const ProbeResult probe = monitor.probe_kmm_weights(collapsed);
    EXPECT_EQ(probe.level, HealthLevel::kCritical) << probe.detail;

    EXPECT_EQ(monitor.probe_kmm_weights({}).level, HealthLevel::kCritical);
}

TEST(ResidualProbe, InflatedIncomingResidualsEscalate) {
    const HealthMonitor monitor;
    linalg::Matrix train(50, 2);
    linalg::Matrix incoming(50, 2);
    rng::Rng rng(7);
    for (std::size_t r = 0; r < 50; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            train(r, c) = std::abs(rng.normal(0.0, 0.1));
            incoming(r, c) = train(r, c);
        }
    }
    EXPECT_EQ(monitor.probe_regression_residuals(train, incoming).level,
              HealthLevel::kHealthy);
    for (std::size_t r = 0; r < 50; ++r) {
        for (std::size_t c = 0; c < 2; ++c) incoming(r, c) = train(r, c) * 40.0;
    }
    const ProbeResult probe = monitor.probe_regression_residuals(train, incoming);
    EXPECT_EQ(probe.level, HealthLevel::kCritical) << probe.detail;
}

TEST(MonitorState, RecordReplacesSameNameAndAggregatesVerdict) {
    HealthMonitor monitor;
    EXPECT_EQ(monitor.verdict(), HealthLevel::kHealthy);

    ProbeResult warn;
    warn.name = "drift.pcm";
    warn.escalate(HealthLevel::kWarn, "first pass");
    monitor.record(warn);
    EXPECT_EQ(monitor.verdict(), HealthLevel::kWarn);
    EXPECT_EQ(monitor.probes().size(), 1u);

    ProbeResult healthy;
    healthy.name = "drift.pcm";
    monitor.record(healthy);  // stage re-ran: same-name probe is replaced
    EXPECT_EQ(monitor.verdict(), HealthLevel::kHealthy);
    EXPECT_EQ(monitor.probes().size(), 1u);

    ProbeResult critical;
    critical.name = "kmm_weights";
    critical.escalate(HealthLevel::kCritical, "collapse");
    monitor.record(critical);
    EXPECT_EQ(monitor.verdict(), HealthLevel::kCritical);
    ASSERT_TRUE(monitor.find("kmm_weights").has_value());
    EXPECT_EQ(monitor.find("kmm_weights")->level, HealthLevel::kCritical);
    EXPECT_FALSE(monitor.find("absent").has_value());

    const io::Json doc = monitor.to_json();
    EXPECT_EQ(doc.at("verdict").str(), "critical");
    EXPECT_EQ(doc.at("probes").size(), 2u);

    monitor.clear();
    EXPECT_EQ(monitor.verdict(), HealthLevel::kHealthy);
    EXPECT_TRUE(monitor.probes().empty());
}

// --- pipeline integration ----------------------------------------------------

core::ExperimentConfig small_config() {
    core::ExperimentConfig config;
    config.n_chips = 12;
    config.pipeline.monte_carlo_samples = 60;
    config.pipeline.synthetic_samples = 2000;
    return config;
}

TEST(PipelineHealth, CleanRunReportsAllProbesHealthy) {
    const core::ExperimentConfig config = small_config();
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();
    const silicon::DuttDataset measured =
        core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);
    pipeline.probe_incoming(measured);

    const obs::HealthMonitor& health = pipeline.health();
    EXPECT_EQ(health.verdict(), HealthLevel::kHealthy);
    for (const char* name : {"mars_fit", "kmm_weights", "calibration", "drift.pcm",
                             "kde.s2", "kde.s5", "boundaries",
                             "regression_residuals", "svm.B1", "svm.B5"}) {
        const std::optional<ProbeResult> probe = health.find(name);
        ASSERT_TRUE(probe.has_value()) << name;
        EXPECT_EQ(probe->level, HealthLevel::kHealthy)
            << name << ": " << probe->detail;
    }
}

TEST(PipelineHealth, ForcedDriftAndCollapseDegradeVerdictWithPerChannelKs) {
    core::ExperimentConfig config = small_config();
    // The E14/E15 forcing: an impossible ESS floor guarantees the KMM
    // collapse fallback, and the DUTT PCMs get an extra >= 1 sigma shift.
    config.pipeline.kmm_min_effective_sample_size = 1e9;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();
    silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    for (std::size_t c = 0; c < measured.pcms.cols(); ++c) {
        double mean = 0.0;
        for (std::size_t r = 0; r < measured.pcms.rows(); ++r) {
            mean += measured.pcms(r, c);
        }
        mean /= static_cast<double>(measured.pcms.rows());
        double var = 0.0;
        for (std::size_t r = 0; r < measured.pcms.rows(); ++r) {
            const double d = measured.pcms(r, c) - mean;
            var += d * d;
        }
        const double sigma =
            std::sqrt(var / static_cast<double>(measured.pcms.rows() - 1));
        for (std::size_t r = 0; r < measured.pcms.rows(); ++r) {
            measured.pcms(r, c) += 1.5 * sigma;
        }
    }

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);

    ASSERT_TRUE(pipeline.kmm_fallback_applied());
    const obs::HealthMonitor& health = pipeline.health();
    EXPECT_GE(static_cast<int>(health.verdict()),
              static_cast<int>(HealthLevel::kDegraded));

    // The health section carries per-channel KS statistics for the drift.
    const std::optional<ProbeResult> drift = health.find("drift.pcm");
    ASSERT_TRUE(drift.has_value());
    bool per_channel_ks = false;
    for (const auto& [key, value] : drift->values) {
        if (key.rfind("ks_ch", 0) == 0) {
            per_channel_ks = true;
            EXPECT_GE(value, 0.0);
            EXPECT_LE(value, 1.0);
        }
    }
    EXPECT_TRUE(per_channel_ks);

    const std::optional<ProbeResult> kmm = health.find("kmm_weights");
    ASSERT_TRUE(kmm.has_value());
    EXPECT_GE(static_cast<int>(kmm->level),
              static_cast<int>(HealthLevel::kDegraded));

    // And the RunReport serializes the verdict under "health".
    const obs::RunReport report =
        core::pipeline_run_report(pipeline, "forced_drift");
    const io::Json& doc = report.json();
    ASSERT_TRUE(doc.contains("health"));
    const HealthLevel reported =
        obs::health_level_from_name(doc.at("health").at("verdict").str());
    EXPECT_GE(static_cast<int>(reported), static_cast<int>(HealthLevel::kDegraded));
}

TEST(PipelineHealth, KmmCollapseFallbackVisibleInReportHealthAndJournal) {
    // The B4 -> B3 KMM-collapse fallback must be observable through BOTH
    // forensic surfaces at once: the htd.run_report.v2 "health" section
    // (the boundaries probe) and an htd.events.v1 boundary_fallback event
    // in the decision journal (DESIGN.md §15).
    core::ExperimentConfig config = small_config();
    config.pipeline.kmm_min_effective_sample_size = 1e9;  // force collapse

    obs::EventJournal& journal = obs::EventJournal::global();
    journal.enable_memory();

    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();
    const silicon::DuttDataset measured =
        core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline,
        silicon::SpiceSimulator(config.platform, processes.spice));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);
    ASSERT_TRUE(pipeline.kmm_fallback_applied());

    // Surface 1: the run report's health section names the degraded B4.
    const obs::RunReport report =
        core::pipeline_run_report(pipeline, "kmm_collapse");
    const io::Json& doc = report.json();
    ASSERT_TRUE(doc.contains("health"));
    bool degraded_boundary_reported = false;
    for (const io::Json& probe : doc.at("health").at("probes").elements()) {
        if (probe.at("name").str() != "boundaries") continue;
        EXPECT_GE(static_cast<int>(
                      obs::health_level_from_name(probe.at("level").str())),
                  static_cast<int>(HealthLevel::kDegraded));
        EXPECT_NE(probe.at("detail").str().find("B4 degraded"),
                  std::string::npos)
            << probe.at("detail").str();
        degraded_boundary_reported = true;
    }
    EXPECT_TRUE(degraded_boundary_reported);

    // Surface 2: the journal carries the typed boundary_fallback event
    // with the collapsed effective sample size and the floor it violated.
    bool fallback_journaled = false;
    for (const obs::Event& event : journal.recent()) {
        if (event.kind != "boundary_fallback") continue;
        EXPECT_EQ(event.boundary, "B4");
        bool has_ess = false;
        bool has_floor = false;
        for (const auto& [key, value] : event.values) {
            if (key == "effective_sample_size") has_ess = true;
            if (key == "floor") {
                has_floor = true;
                EXPECT_EQ(value, 1e9);
            }
        }
        EXPECT_TRUE(has_ess);
        EXPECT_TRUE(has_floor);
        fallback_journaled = true;
    }
    EXPECT_TRUE(fallback_journaled);
    journal.close();
}

// --- committed quickstart artifact -------------------------------------------

TEST(CommittedArtifact, QuickstartRunReportParsesWithCurrentSchema) {
    const std::string path =
        std::string(HTD_SOURCE_DIR) + "/quickstart_run_report.json";
    const io::Json doc = io::Json::parse_file(path);
    EXPECT_EQ(doc.at("schema").str(), "htd.run_report.v2");
    EXPECT_EQ(doc.at("run").str(), "quickstart");
    ASSERT_TRUE(doc.contains("health"));
    EXPECT_EQ(doc.at("health").at("verdict").str(), "healthy");
    ASSERT_TRUE(doc.contains("boundaries"));
    ASSERT_TRUE(doc.contains("degradation"));
    ASSERT_TRUE(doc.contains("observability"));
    // v2 emits estimated quantiles for every latency histogram.
    for (const auto& [name, hist] :
         doc.at("observability").at("metrics").at("histograms").members()) {
        EXPECT_TRUE(hist.contains("p50")) << name;
        EXPECT_TRUE(hist.contains("p90")) << name;
        EXPECT_TRUE(hist.contains("p99")) << name;
    }
    EXPECT_TRUE(doc.at("observability").contains("spans_dropped"));
}

}  // namespace
