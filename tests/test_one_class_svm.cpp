/// Tests for the one-class SVM (SMO) trusted-region learner.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ml/one_class_svm.hpp"
#include "rng/rng.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::OneClassSvm;
using htd::rng::Rng;

Matrix blob(Rng& rng, std::size_t n, std::size_t d, double mean, double sd) {
    Matrix data(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) data(r, c) = rng.normal(mean, sd);
    return data;
}

TEST(OneClassSvm, RejectsBadOptions) {
    OneClassSvm::Options opts;
    opts.nu = 0.0;
    EXPECT_THROW(OneClassSvm{opts}, std::invalid_argument);
    opts.nu = 1.0;
    EXPECT_THROW(OneClassSvm{opts}, std::invalid_argument);
    opts.nu = 0.5;
    opts.max_training_samples = 0;
    EXPECT_THROW(OneClassSvm{opts}, std::invalid_argument);
    opts.max_training_samples = 10;
    opts.tolerance = 0.0;
    EXPECT_THROW(OneClassSvm{opts}, std::invalid_argument);
    opts.tolerance = 1e-4;
    opts.gamma_scale = 0.0;
    EXPECT_THROW(OneClassSvm{opts}, std::invalid_argument);
}

TEST(OneClassSvm, RejectsEmptyFit) {
    OneClassSvm svm;
    EXPECT_THROW(svm.fit(Matrix()), std::invalid_argument);
}

TEST(OneClassSvm, ThrowsBeforeFit) {
    const OneClassSvm svm;
    EXPECT_THROW((void)svm.decision_value(Vector{0.0}), std::logic_error);
}

TEST(OneClassSvm, ContainsTrainingCore) {
    Rng rng(1);
    const Matrix data = blob(rng, 200, 2, 0.0, 1.0);
    OneClassSvm::Options opts;
    opts.nu = 0.1;
    OneClassSvm svm(opts);
    svm.fit(data);
    // The training mean must be deep inside the region.
    EXPECT_TRUE(svm.contains(Vector{0.0, 0.0}));
    // Most training points are inside (1 - nu of them, approximately).
    std::size_t inside = 0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        if (svm.contains(data.row(r))) ++inside;
    }
    EXPECT_GT(inside, 160u);
}

TEST(OneClassSvm, RejectsFarOutliers) {
    Rng rng(2);
    const Matrix data = blob(rng, 200, 2, 0.0, 1.0);
    OneClassSvm svm;
    svm.fit(data);
    EXPECT_FALSE(svm.contains(Vector{15.0, -15.0}));
    EXPECT_FALSE(svm.contains(Vector{50.0, 0.0}));
}

TEST(OneClassSvm, DecisionValueDecreasesWithDistance) {
    Rng rng(3);
    const Matrix data = blob(rng, 150, 1, 0.0, 1.0);
    OneClassSvm svm;
    svm.fit(data);
    const double d0 = svm.decision_value(Vector{0.0});
    const double d3 = svm.decision_value(Vector{3.0});
    const double d6 = svm.decision_value(Vector{6.0});
    EXPECT_GT(d0, d3);
    EXPECT_GT(d3, d6);
}

TEST(OneClassSvm, NuControlsOutlierFraction) {
    Rng rng(4);
    const Matrix data = blob(rng, 400, 2, 0.0, 1.0);
    auto train_and_count = [&](double nu) {
        OneClassSvm::Options opts;
        opts.nu = nu;
        OneClassSvm svm(opts);
        svm.fit(data);
        std::size_t outside = 0;
        for (std::size_t r = 0; r < data.rows(); ++r) {
            if (!svm.contains(data.row(r))) ++outside;
        }
        return static_cast<double>(outside) / static_cast<double>(data.rows());
    };
    const double frac_small = train_and_count(0.02);
    const double frac_large = train_and_count(0.3);
    EXPECT_LT(frac_small, frac_large);
    // nu upper-bounds the fraction of margin errors (training outliers).
    EXPECT_LE(frac_small, 0.06);
    EXPECT_LE(frac_large, 0.40);
}

TEST(OneClassSvm, SupportVectorFractionAtLeastNu) {
    Rng rng(5);
    const Matrix data = blob(rng, 300, 2, 0.0, 1.0);
    OneClassSvm::Options opts;
    opts.nu = 0.2;
    OneClassSvm svm(opts);
    svm.fit(data);
    EXPECT_GE(svm.support_vector_count(), 300u * 2u / 10u);  // >= nu * n
}

TEST(OneClassSvm, SubsamplingCapRespected) {
    Rng rng(6);
    const Matrix data = blob(rng, 5000, 2, 0.0, 1.0);
    OneClassSvm::Options opts;
    opts.max_training_samples = 500;
    OneClassSvm svm(opts);
    svm.fit(data);
    EXPECT_LE(svm.support_vector_count(), 500u);
    // Most of the data is inside the region (the RBF one-class SVM does not
    // guarantee the exact centroid is included — with a dense ring of
    // support vectors the interior can score slightly below rho — so the
    // contract is about data coverage, not about any single point).
    std::size_t inside = 0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        if (svm.contains(data.row(r))) ++inside;
    }
    EXPECT_GT(inside, data.rows() * 7 / 10);
    EXPECT_FALSE(svm.contains(Vector{20.0, 20.0}));
}

TEST(OneClassSvm, TwoBlobRegionExcludesGap) {
    Rng rng(7);
    Matrix data = blob(rng, 150, 1, -6.0, 0.5);
    const Matrix other = blob(rng, 150, 1, 6.0, 0.5);
    for (std::size_t r = 0; r < other.rows(); ++r) data.append_row(other.row(r));
    OneClassSvm::Options opts;
    opts.gamma_scale = 8.0;  // tight kernel resolves the two modes
    OneClassSvm svm(opts);
    svm.fit(data);
    EXPECT_TRUE(svm.contains(Vector{-6.0}));
    EXPECT_TRUE(svm.contains(Vector{6.0}));
    EXPECT_FALSE(svm.contains(Vector{0.0}));
}

TEST(OneClassSvm, GammaScaleTightensBoundary) {
    Rng rng(8);
    const Matrix data = blob(rng, 200, 2, 0.0, 1.0);
    OneClassSvm::Options loose_opts;
    loose_opts.gamma_scale = 0.5;
    OneClassSvm loose(loose_opts);
    loose.fit(data);
    OneClassSvm::Options tight_opts;
    tight_opts.gamma_scale = 8.0;
    OneClassSvm tight(tight_opts);
    tight.fit(data);
    EXPECT_GT(tight.effective_gamma(), loose.effective_gamma());
    // Decision values are not comparable across gammas; compare the covered
    // region instead: the tight boundary admits at most as many points of a
    // probe ring at 2.5 sigma as the loose one.
    std::size_t loose_in = 0, tight_in = 0;
    for (int k = 0; k < 32; ++k) {
        const double angle = 2.0 * 3.14159265358979 * k / 32.0;
        const Vector probe{2.5 * std::cos(angle), 2.5 * std::sin(angle)};
        loose_in += loose.contains(probe) ? 1 : 0;
        tight_in += tight.contains(probe) ? 1 : 0;
    }
    EXPECT_LE(tight_in, loose_in);
}

TEST(OneClassSvm, WhitenSeparatesAnisotropicOutliers) {
    // Cloud elongated along (1,1): a transverse outlier at modest Euclidean
    // distance is inside the standardized boundary but outside the whitened
    // one — the exact situation of the golden-chip fingerprint cloud.
    Rng rng(9);
    Matrix data(300, 2);
    for (std::size_t r = 0; r < 300; ++r) {
        const double t = rng.normal(0.0, 1.0);
        data(r, 0) = t + rng.normal(0.0, 0.02);
        data(r, 1) = t - rng.normal(0.0, 0.02);
    }
    OneClassSvm::Options plain_opts;
    OneClassSvm plain(plain_opts);
    plain.fit(data);
    OneClassSvm::Options white_opts;
    white_opts.whiten = true;
    OneClassSvm white(white_opts);
    white.fit(data);

    const Vector transverse{0.3, -0.3};  // 0.42 off-axis, tiny along the cloud
    // The whitened model sees the probe as many sigma away; relative to its
    // own on-cloud score, it rejects the transverse probe far more strongly
    // than the standardized model does.
    const double plain_gap =
        plain.decision_value(Vector{0.0, 0.0}) - plain.decision_value(transverse);
    const double white_gap =
        white.decision_value(Vector{0.0, 0.0}) - white.decision_value(transverse);
    EXPECT_FALSE(white.contains(transverse));
    EXPECT_GT(white_gap, plain_gap);
    // Both keep the cloud core.
    EXPECT_TRUE(white.contains(Vector{0.5, 0.5}));
}

TEST(OneClassSvm, DecisionValuesBatchMatchesScalar) {
    Rng rng(10);
    const Matrix data = blob(rng, 100, 2, 0.0, 1.0);
    OneClassSvm svm;
    svm.fit(data);
    const Matrix probes = blob(rng, 10, 2, 0.0, 2.0);
    const Vector batch = svm.decision_values(probes);
    for (std::size_t r = 0; r < probes.rows(); ++r) {
        EXPECT_DOUBLE_EQ(batch[r], svm.decision_value(probes.row(r)));
    }
}

TEST(OneClassSvm, InputDimensionMismatchThrows) {
    Rng rng(11);
    const Matrix data = blob(rng, 50, 3, 0.0, 1.0);
    OneClassSvm svm;
    svm.fit(data);
    EXPECT_THROW((void)svm.decision_value(Vector{0.0, 0.0}), std::invalid_argument);
}

/// Property sweep: for any reasonable nu the model keeps its own mean inside
/// and a 10-sigma outlier outside.
class SvmNuSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmNuSweep, MeanInsideOutlierOutside) {
    Rng rng(12);
    const Matrix data = blob(rng, 250, 3, 2.0, 0.7);
    OneClassSvm::Options opts;
    opts.nu = GetParam();
    OneClassSvm svm(opts);
    svm.fit(data);
    EXPECT_TRUE(svm.contains(Vector{2.0, 2.0, 2.0}));
    EXPECT_FALSE(svm.contains(Vector{9.0, 9.0, 9.0}));
}

INSTANTIATE_TEST_SUITE_P(Nus, SvmNuSweep, ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5));

}  // namespace
