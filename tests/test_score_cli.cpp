/// \file test_score_cli.cpp
/// The htd_score CLI contract (score_cli.hpp): --help documents the exit
/// codes (0 clean / 1 flagged-or-error / 2 artifact rejection) and the
/// decision-forensics flags, help exits clean, and usage errors map onto
/// exit code 1 — all driven in-process through htd_score_lib.

#include <gtest/gtest.h>

#include <string>

#include "score_cli.hpp"

namespace {

using namespace htd;

TEST(ScoreCliHelp, DocumentsExitCodesAndForensicsFlags) {
    const std::string& help = score_cli::help_text();
    EXPECT_NE(help.find("exit codes:"), std::string::npos);
    EXPECT_NE(help.find("0  clean"), std::string::npos);
    EXPECT_NE(help.find("1  flagged or error"), std::string::npos);
    EXPECT_NE(help.find("2  artifact rejected"), std::string::npos);
    EXPECT_NE(help.find("--journal <file>"), std::string::npos);
    EXPECT_NE(help.find("--explain <out.json>"), std::string::npos);
    EXPECT_NE(help.find("htd.events.v1"), std::string::npos);
    EXPECT_NE(help.find("htd.explain.v1"), std::string::npos);
    EXPECT_NE(help.find("HTD_OBS_JOURNAL_NORMALIZE"), std::string::npos);
}

TEST(ScoreCliRun, HelpExitsClean) {
    for (const char* flag : {"--help", "-h", "help"}) {
        const char* argv[] = {"htd_score", flag};
        EXPECT_EQ(score_cli::run(2, argv), score_cli::kExitClean) << flag;
    }
}

TEST(ScoreCliRun, UsageErrorsExitOne) {
    const char* none[] = {"htd_score"};
    EXPECT_EQ(score_cli::run(1, none), score_cli::kExitFlaggedOrError);

    const char* unknown_command[] = {"htd_score", "frobnicate"};
    EXPECT_EQ(score_cli::run(2, unknown_command),
              score_cli::kExitFlaggedOrError);

    const char* unknown_flag[] = {"htd_score", "score", "--bogus"};
    EXPECT_EQ(score_cli::run(3, unknown_flag),
              score_cli::kExitFlaggedOrError);

    // score without its required flags is a usage error, not a crash.
    const char* missing[] = {"htd_score", "score"};
    EXPECT_EQ(score_cli::run(2, missing), score_cli::kExitFlaggedOrError);

    // a flag missing its value is reported, not read out of bounds.
    const char* dangling[] = {"htd_score", "score", "--artifact"};
    EXPECT_EQ(score_cli::run(3, dangling), score_cli::kExitFlaggedOrError);
}

TEST(ScoreCliRun, UnreadableArtifactIsRejectedWithExitTwo) {
    // An artifact that cannot even be opened is a typed ArtifactError —
    // the "never score against a corrupt artifact" contract maps every
    // artifact failure onto exit 2.
    const char* argv[] = {"htd_score",    "score",
                          "--artifact",   "/nonexistent/htd_artifact.json",
                          "--fingerprints", "/nonexistent/fp.csv",
                          "--bscores",    "/nonexistent/out.json"};
    EXPECT_EQ(score_cli::run(8, argv), score_cli::kExitArtifactRejected);
}

}  // namespace
