/// Tests for the mini-SPICE engine: netlist construction, PWL sources, DC
/// operating points against hand analysis, transient RC behaviour against
/// closed forms, MOSFET region equations, and cross-validation of the
/// analytic PCM delay model.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "circuit/spice.hpp"
#include "process/variation_model.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::circuit::build_pcm_path_netlist;
using htd::circuit::MosfetGeometry;
using htd::circuit::MosfetInstance;
using htd::circuit::MosType;
using htd::circuit::Netlist;
using htd::circuit::PcmPath;
using htd::circuit::Pwl;
using htd::circuit::SpiceEngine;
using htd::process::nominal_350nm;
using htd::process::Param;
using htd::process::ProcessPoint;

// --- Pwl ----------------------------------------------------------------------

TEST(PwlTest, ConstantEverywhere) {
    const Pwl p(2.5);
    EXPECT_DOUBLE_EQ(p.at(-1.0), 2.5);
    EXPECT_DOUBLE_EQ(p.at(0.0), 2.5);
    EXPECT_DOUBLE_EQ(p.at(1e9), 2.5);
}

TEST(PwlTest, InterpolatesAndClamps) {
    const Pwl p(std::vector<std::pair<double, double>>{{1.0, 0.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);   // before first point
    EXPECT_DOUBLE_EQ(p.at(2.0), 2.0);   // midpoint
    EXPECT_DOUBLE_EQ(p.at(10.0), 4.0);  // after last point
}

TEST(PwlTest, RejectsBadBreakpoints) {
    EXPECT_THROW(Pwl(std::vector<std::pair<double, double>>{}), std::invalid_argument);
    EXPECT_THROW(Pwl(std::vector<std::pair<double, double>>{{1.0, 0.0}, {1.0, 1.0}}),
                 std::invalid_argument);
}

TEST(PwlTest, StepShape) {
    const Pwl p = Pwl::step(0.0, 3.3, 1e-9, 0.1e-9);
    EXPECT_DOUBLE_EQ(p.at(0.5e-9), 0.0);
    EXPECT_DOUBLE_EQ(p.at(2e-9), 3.3);
    EXPECT_NEAR(p.at(1.05e-9), 1.65, 1e-9);
    EXPECT_THROW(Pwl::step(0.0, 1.0, 1e-9, 0.0), std::invalid_argument);
}

// --- Netlist ---------------------------------------------------------------------

TEST(NetlistTest, GroundAliases) {
    Netlist net;
    EXPECT_EQ(net.node("0"), 0u);
    EXPECT_EQ(net.node("gnd"), 0u);
    const std::size_t a = net.node("a");
    EXPECT_EQ(net.node("a"), a);
    EXPECT_NE(a, 0u);
}

TEST(NetlistTest, RejectsBadDevices) {
    Netlist net;
    EXPECT_THROW(net.add_resistor("r", "a", "b", 0.0), std::invalid_argument);
    EXPECT_THROW(net.add_capacitor("c", "a", "b", -1e-15), std::invalid_argument);
    EXPECT_THROW(net.add_mosfet("m", "d", "g", "s", MosType::kNmos, {0.0, 0.35}),
                 std::invalid_argument);
}

TEST(NetlistTest, InverterExpandsToTwoDevices) {
    Netlist net;
    net.add_inverter("x1", "in", "out", "vdd", 4.0);
    ASSERT_EQ(net.mosfets().size(), 2u);
    EXPECT_EQ(net.mosfets()[0].type, MosType::kPmos);
    EXPECT_EQ(net.mosfets()[1].type, MosType::kNmos);
    EXPECT_DOUBLE_EQ(net.mosfets()[0].geometry.width_um, 8.0);
}

// --- DC ---------------------------------------------------------------------------

TEST(SpiceDc, VoltageDivider) {
    Netlist net;
    net.add_vsource("v1", "a", "0", Pwl(3.0));
    net.add_resistor("r1", "a", "b", 2000.0);
    net.add_resistor("r2", "b", "0", 1000.0);
    SpiceEngine engine(net);
    const auto dc = engine.dc(nominal_350nm());
    EXPECT_TRUE(dc.converged);
    EXPECT_NEAR(dc.node_voltages[net.node("b")], 1.0, 1e-4);
}

TEST(SpiceDc, CurrentSourceIntoResistor) {
    Netlist net;
    net.add_isource("i1", "a", "0", Pwl(1e-3));  // 1 mA flows a -> gnd inside
    net.add_resistor("r1", "a", "0", 1000.0);
    SpiceEngine engine(net);
    const auto dc = engine.dc(nominal_350nm());
    // The source removes current from node a, so a sits below ground.
    EXPECT_NEAR(dc.node_voltages[net.node("a")], -1.0, 1e-3);
}

TEST(SpiceDc, InverterLogicLevels) {
    const ProcessPoint pp = nominal_350nm();
    for (const double vin : {0.0, 3.3}) {
        Netlist net;
        net.add_vsource("vdd", "vdd", "0", Pwl(3.3));
        net.add_vsource("vin", "in", "0", Pwl(vin));
        net.add_inverter("x1", "in", "out", "vdd", 4.0);
        SpiceEngine engine(net);
        const auto dc = engine.dc(pp);
        ASSERT_TRUE(dc.converged);
        const double vout = dc.node_voltages[net.node("out")];
        if (vin == 0.0) {
            EXPECT_NEAR(vout, 3.3, 0.05);
        } else {
            EXPECT_NEAR(vout, 0.0, 0.05);
        }
    }
}

TEST(SpiceDc, InverterTransferIsMonotoneDecreasing) {
    const ProcessPoint pp = nominal_350nm();
    double prev = 4.0;
    for (double vin = 0.0; vin <= 3.3; vin += 0.3) {
        Netlist net;
        net.add_vsource("vdd", "vdd", "0", Pwl(3.3));
        net.add_vsource("vin", "in", "0", Pwl(vin));
        net.add_inverter("x1", "in", "out", "vdd", 4.0);
        const auto dc = SpiceEngine(net).dc(pp);
        const double vout = dc.node_voltages[net.node("out")];
        EXPECT_LE(vout, prev + 1e-6);
        prev = vout;
    }
}

TEST(SpiceDc, NmosSaturationCurrentMatchesDeviceModel) {
    // NMOS with grounded source, gate at 2 V, drain pulled to 3.3 V through
    // a tiny resistor: drain current ~ model saturation current.
    const ProcessPoint pp = nominal_350nm();
    Netlist net;
    net.add_vsource("vdd", "vdd", "0", Pwl(3.3));
    net.add_vsource("vg", "g", "0", Pwl(2.0));
    net.add_resistor("rd", "vdd", "d", 1.0);
    net.add_mosfet("m1", "d", "g", "0", MosType::kNmos, {10.0, 0.35});
    const auto dc = SpiceEngine(net).dc(pp);
    ASSERT_TRUE(dc.converged);
    const double i_drain = (3.3 - dc.node_voltages[net.node("d")]) / 1.0;
    const htd::circuit::Mosfet model(MosType::kNmos, {10.0, 0.35});
    const double i_model = model.saturation_current_ma(pp, 2.0) * 1e-3;
    // Channel-length modulation raises the simulated value slightly.
    EXPECT_NEAR(i_drain, i_model, 0.2 * i_model);
}

TEST(SpiceDc, EmptyNetlistRejected) {
    Netlist net;
    EXPECT_THROW(SpiceEngine{net}, std::invalid_argument);
}

// --- MOSFET region equations ----------------------------------------------------

TEST(MosfetRegions, CutoffTriodeSaturation) {
    const ProcessPoint pp = nominal_350nm();
    const MosfetInstance m{"m", 1, 2, 0, MosType::kNmos, {10.0, 0.35}};
    // Cutoff.
    EXPECT_DOUBLE_EQ(htd::circuit::mosfet_current_a(m, pp, 0.2, 1.0), 0.0);
    // Saturation current grows with vgs.
    const double i1 = htd::circuit::mosfet_current_a(m, pp, 1.5, 3.0);
    const double i2 = htd::circuit::mosfet_current_a(m, pp, 2.5, 3.0);
    EXPECT_GT(i2, i1);
    // Triode current below the saturation value.
    const double i_triode = htd::circuit::mosfet_current_a(m, pp, 2.5, 0.1);
    EXPECT_GT(i_triode, 0.0);
    EXPECT_LT(i_triode, i2);
}

TEST(MosfetRegions, SymmetricInVds) {
    const ProcessPoint pp = nominal_350nm();
    const MosfetInstance m{"m", 1, 2, 0, MosType::kNmos, {10.0, 0.35}};
    // Swapping drain/source negates the current, with the gate drive
    // re-referenced to the new source: I(vgs, -vds) = -I(vgs + vds_mag, +vds_mag)
    // evaluated at the effective vgs' = vgs - vds. Concretely the mirror of
    // (vgs = 2, vds = 1) is (vgs = 1, vds = -1).
    const double fwd = htd::circuit::mosfet_current_a(m, pp, 2.0, 1.0);
    const double rev = htd::circuit::mosfet_current_a(m, pp, 1.0, -1.0);
    EXPECT_NEAR(rev, -fwd, 1e-12);
}

TEST(MosfetRegions, PmosMirrorsNmos) {
    const ProcessPoint pp = nominal_350nm();
    const MosfetInstance p{"mp", 1, 2, 0, MosType::kPmos, {10.0, 0.35}};
    // PMOS conducts for negative vgs/vds and carries negative drain current.
    const double i = htd::circuit::mosfet_current_a(p, pp, -2.0, -1.5);
    EXPECT_LT(i, 0.0);
    EXPECT_DOUBLE_EQ(htd::circuit::mosfet_current_a(p, pp, 2.0, 1.5), 0.0);
}

// --- transient --------------------------------------------------------------------

TEST(SpiceTransient, RcChargeMatchesClosedForm) {
    // R = 1k, C = 1pF charged from a 1 V step: v(t) = 1 - exp(-t/RC).
    Netlist net;
    net.add_vsource("vin", "a", "0", Pwl::step(0.0, 1.0, 1e-10, 1e-12));
    net.add_resistor("r", "a", "b", 1000.0);
    net.add_capacitor("c", "b", "0", 1e-12);
    SpiceEngine engine(net);
    const auto tr = engine.transient(nominal_350nm(), 5e-9, 1e-12);
    const std::size_t b = net.node("b");
    // After one time constant (1 ns) past the step the node reaches ~63%.
    double v_at_tau = 0.0;
    for (std::size_t k = 0; k < tr.time.size(); ++k) {
        if (tr.time[k] >= 1e-10 + 1e-9) {
            v_at_tau = tr.voltages(k, b);
            break;
        }
    }
    EXPECT_NEAR(v_at_tau, 1.0 - std::exp(-1.0), 0.02);
}

TEST(SpiceTransient, CrossingTimeInterpolates) {
    Netlist net;
    net.add_vsource("vin", "a", "0", Pwl::step(0.0, 1.0, 1e-10, 1e-12));
    net.add_resistor("r", "a", "b", 1000.0);
    net.add_capacitor("c", "b", "0", 1e-12);
    const auto tr = SpiceEngine(net).transient(nominal_350nm(), 5e-9, 1e-12);
    const double t50 = tr.crossing_time(net.node("b"), 0.5, true);
    // 50% of an RC charge happens at t = RC ln 2 after the step.
    EXPECT_NEAR(t50, 1e-10 + 1e-9 * std::log(2.0), 0.05e-9);
    // Falling crossing never happens.
    EXPECT_LT(tr.crossing_time(net.node("b"), 0.5, false), 0.0);
}

TEST(SpiceTransient, RejectsBadTimeParameters) {
    Netlist net;
    net.add_vsource("v", "a", "0", Pwl(1.0));
    net.add_resistor("r", "a", "0", 1.0);
    SpiceEngine engine(net);
    EXPECT_THROW((void)engine.transient(nominal_350nm(), 0.0, 1e-12),
                 std::invalid_argument);
    EXPECT_THROW((void)engine.transient(nominal_350nm(), 1e-9, 2e-9),
                 std::invalid_argument);
}

// --- PCM path cross-validation -----------------------------------------------------

TEST(SpicePcm, DelaySameOrderAsAnalyticModel) {
    PcmPath::Options opts;
    opts.stages = 4;
    const double spice = htd::circuit::spice_pcm_delay_ns(nominal_350nm(), opts);
    const double analytic = PcmPath(opts).delay_ns(nominal_350nm());
    EXPECT_GT(spice, 0.1 * analytic);
    EXPECT_LT(spice, 2.0 * analytic);
}

TEST(SpicePcm, SlowerAtSlowCorner) {
    PcmPath::Options opts;
    opts.stages = 2;
    ProcessPoint slow = nominal_350nm();
    slow.set(Param::kMuN, 350.0);
    slow.set(Param::kMuP, 115.0);
    EXPECT_GT(htd::circuit::spice_pcm_delay_ns(slow, opts),
              htd::circuit::spice_pcm_delay_ns(nominal_350nm(), opts));
}

TEST(SpicePcm, CorrelatesWithAnalyticAcrossProcess) {
    // The statistical pipeline only needs the analytic model to track the
    // simulated silicon monotonically; check rank agreement over a small
    // Monte Carlo population.
    const auto model = htd::process::ProcessVariationModel::default_350nm();
    htd::rng::Rng rng(5);
    PcmPath::Options opts;
    opts.stages = 2;
    std::vector<double> spice, analytic;
    for (int i = 0; i < 8; ++i) {
        const ProcessPoint pp = model.sample_monte_carlo(rng);
        spice.push_back(htd::circuit::spice_pcm_delay_ns(pp, opts));
        analytic.push_back(PcmPath(opts).delay_ns(pp));
    }
    EXPECT_GT(htd::stats::pearson_correlation(spice, analytic), 0.9);
}

}  // namespace

// --- additional solver behaviours (appended) ---------------------------------------

namespace {

TEST(SpiceTransient, CurrentSourceChargesCapacitor) {
    // 1 uA switched on at t = 0.1 ns into 1 pF: dv/dt = 1e-3 V/ns, so after
    // a further ~1.9 ns the node sits near -1.9 mV (the source convention
    // pulls current out of np). The source is off at DC so the simulation
    // starts from a discharged capacitor.
    Netlist net;
    net.add_isource("i1", "a", "0",
                    Pwl(std::vector<std::pair<double, double>>{
                        {0.0, 0.0}, {0.1e-9, 0.0}, {0.10001e-9, 1e-6}}));
    net.add_capacitor("c1", "a", "0", 1e-12);
    SpiceEngine engine(net);
    const auto tr = engine.transient(nominal_350nm(), 2e-9, 1e-12);
    const double v_end = tr.voltages(tr.time.size() - 1, net.node("a"));
    EXPECT_NEAR(v_end, -1.9e-3, 2e-4);
}

TEST(SpiceDc, TwoStageBufferRestoresLevel) {
    const ProcessPoint pp = nominal_350nm();
    Netlist net;
    net.add_vsource("vdd", "vdd", "0", Pwl(3.3));
    net.add_vsource("vin", "in", "0", Pwl(3.3));
    net.add_inverter("x1", "in", "mid", "vdd", 4.0);
    net.add_inverter("x2", "mid", "out", "vdd", 4.0);
    const auto dc = SpiceEngine(net).dc(pp);
    EXPECT_NEAR(dc.node_voltages[net.node("mid")], 0.0, 0.05);
    EXPECT_NEAR(dc.node_voltages[net.node("out")], 3.3, 0.05);
}

TEST(SpicePcm, NetlistBuilderShape) {
    PcmPath::Options opts;
    opts.stages = 3;
    const Netlist net = build_pcm_path_netlist(opts);
    // 3 stages + load inverter = 8 MOSFETs; 3 wires = 3 R + 6 C.
    EXPECT_EQ(net.mosfets().size(), 8u);
    EXPECT_EQ(net.resistors().size(), 3u);
    EXPECT_EQ(net.capacitors().size(), 6u);
    EXPECT_EQ(net.vsources().size(), 2u);
    EXPECT_THROW((void)build_pcm_path_netlist(PcmPath::Options{.stages = 0}),
                 std::invalid_argument);
}

}  // namespace
