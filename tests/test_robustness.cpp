/// Tests for the robustness layer: seeded fault injection (FaultyBench),
/// hardened ingestion (MeasurementValidator), and the pipeline's typed
/// errors / graceful degradation (KMM-collapse fallback, partial-boundary
/// operation).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "core/errors.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/ingest.hpp"
#include "pipeline/pipeline.hpp"
#include "silicon/fault_injector.hpp"

namespace {

using htd::core::Boundary;
using htd::core::BoundaryHealth;
using htd::core::CalibrationCollapseError;
using htd::core::CellFault;
using htd::core::DataQualityError;
using htd::core::DimensionError;
using htd::core::GoldenFreePipeline;
using htd::core::IngestPolicy;
using htd::core::IngestResult;
using htd::core::MeasurementValidator;
using htd::core::PipelineConfig;
using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::rng::Rng;
using htd::silicon::Device;
using htd::silicon::FabricatedLot;
using htd::silicon::FaultModel;
using htd::silicon::FaultyBench;
using htd::silicon::MeasurementSource;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Deterministic in-range source: PCMs near 10 ns, fingerprints near
/// -30 dBm, with per-device structure and a little caller-rng noise.
class StubSource : public MeasurementSource {
public:
    StubSource(std::size_t np, std::size_t nm) : np_(np), nm_(nm) {}

    Vector measure_pcm(const Device& device, Rng& rng) const override {
        Vector v(np_);
        for (std::size_t c = 0; c < np_; ++c) {
            v[c] = 10.0 + 0.01 * static_cast<double>(device.chip_id) +
                   rng.normal(0.0, 0.05);
        }
        return v;
    }

    Vector measure_fingerprint(const Device& device, Rng& rng) const override {
        Vector v(nm_);
        for (std::size_t c = 0; c < nm_; ++c) {
            v[c] = -30.0 + 0.1 * static_cast<double>(device.chip_id) +
                   rng.normal(0.0, 0.1);
        }
        return v;
    }

private:
    std::size_t np_;
    std::size_t nm_;
};

/// Source whose first contact with each device drops a fingerprint channel;
/// every re-measure is clean. Exercises the validator's retry loop.
class FlakyFirstContact : public StubSource {
public:
    FlakyFirstContact(std::size_t np, std::size_t nm) : StubSource(np, nm) {}

    Vector measure_fingerprint(const Device& device, Rng& rng) const override {
        Vector v = StubSource::measure_fingerprint(device, rng);
        if (seen_[device.chip_id]++ == 0) v[0] = kNan;
        return v;
    }

private:
    mutable std::map<std::size_t, int> seen_;
};

FabricatedLot stub_lot(std::size_t n_devices) {
    FabricatedLot lot;
    for (std::size_t i = 0; i < n_devices; ++i) {
        Device dev;
        dev.chip_id = i;
        dev.variant = htd::trojan::DesignVariant::kTrojanFree;
        lot.devices.push_back(dev);
    }
    return lot;
}

// --- FaultModel / FaultyBench ---------------------------------------------------

TEST(FaultModel, ValidatesRatesAndMagnitudes) {
    FaultModel model;
    EXPECT_NO_THROW(model.validate());
    model.nan_dropout_rate = -0.1;
    EXPECT_THROW(model.validate(), std::invalid_argument);
    model.nan_dropout_rate = 1.5;
    EXPECT_THROW(model.validate(), std::invalid_argument);
    model = FaultModel{};
    model.spike_magnitude = -1.0;
    EXPECT_THROW(model.validate(), std::invalid_argument);
    model = FaultModel{};
    model.gain_drift_per_device = kNan;
    EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(FaultyBench, ZeroRatesAreTransparent) {
    const StubSource inner(2, 4);
    const FaultyBench faulty(inner, FaultModel{});
    Device dev;
    dev.chip_id = 7;
    Rng r1(42);
    Rng r2(42);
    const Vector clean = inner.measure_fingerprint(dev, r1);
    const Vector decorated = faulty.measure_fingerprint(dev, r2);
    ASSERT_EQ(clean.size(), decorated.size());
    for (std::size_t c = 0; c < clean.size(); ++c) {
        EXPECT_DOUBLE_EQ(clean[c], decorated[c]);
    }
    EXPECT_EQ(faulty.stats().total_faults(), 0u);
}

TEST(FaultyBench, FullDropoutInjectsNanEverywhere) {
    const StubSource inner(2, 4);
    FaultModel model;
    model.nan_dropout_rate = 1.0;
    model.inf_fraction = 0.0;
    const FaultyBench faulty(inner, model);
    Rng rng(1);
    Device dev;
    const Vector fp = faulty.measure_fingerprint(dev, rng);
    for (std::size_t c = 0; c < fp.size(); ++c) EXPECT_TRUE(std::isnan(fp[c]));
    EXPECT_EQ(faulty.stats().nan_injected, 4u);
    EXPECT_EQ(faulty.stats().inf_injected, 0u);
}

TEST(FaultyBench, SaturatedDropoutRailsToInf) {
    const StubSource inner(2, 4);
    FaultModel model;
    model.nan_dropout_rate = 1.0;
    model.inf_fraction = 1.0;
    const FaultyBench faulty(inner, model);
    Rng rng(2);
    Device dev;
    const Vector fp = faulty.measure_fingerprint(dev, rng);
    for (std::size_t c = 0; c < fp.size(); ++c) EXPECT_TRUE(std::isinf(fp[c]));
    EXPECT_EQ(faulty.stats().inf_injected, 4u);
}

TEST(FaultyBench, StuckChannelRepeatsPreviousDevice) {
    const StubSource inner(2, 4);
    FaultModel model;
    model.stuck_rate = 1.0;
    const FaultyBench faulty(inner, model);
    Rng rng(3);
    Device first;
    first.chip_id = 0;
    Device second;
    second.chip_id = 1;
    const Vector a = faulty.measure_fingerprint(first, rng);
    const Vector b = faulty.measure_fingerprint(second, rng);
    // No latch existed for the first device; the second repeats the first.
    for (std::size_t c = 0; c < a.size(); ++c) EXPECT_DOUBLE_EQ(b[c], a[c]);
    EXPECT_EQ(faulty.stats().stuck_injected, 4u);
}

TEST(FaultyBench, CountsRemeasuresAndReset) {
    const StubSource inner(2, 4);
    const FaultyBench faulty(inner, FaultModel{});
    Rng rng(4);
    Device dev;
    (void)faulty.measure_pcm(dev, rng);
    (void)faulty.measure_pcm(dev, rng);
    (void)faulty.measure_fingerprint(dev, rng);
    EXPECT_EQ(faulty.stats().measurements, 3u);
    EXPECT_EQ(faulty.stats().remeasures, 1u);
    const_cast<FaultyBench&>(faulty).reset();
    EXPECT_EQ(faulty.stats().measurements, 0u);
}

// --- MeasurementValidator -------------------------------------------------------

TEST(IngestPolicy, Validates) {
    IngestPolicy policy;
    EXPECT_NO_THROW(policy.validate());
    policy.robust_z_threshold = 0.0;
    EXPECT_THROW(policy.validate(), htd::core::ConfigError);
    policy = IngestPolicy{};
    policy.pcm_range = {1.0, 0.0};
    EXPECT_THROW(policy.validate(), htd::core::ConfigError);
    policy = IngestPolicy{};
    policy.min_devices = 0;
    EXPECT_THROW(policy.validate(), htd::core::ConfigError);
}

TEST(Validator, ScreenFlagsEachFaultKind) {
    Rng rng(5);
    Matrix data(12, 3);
    for (std::size_t r = 0; r < 12; ++r) {
        for (std::size_t c = 0; c < 3; ++c) data(r, c) = rng.normal(0.0, 1.0);
    }
    data(0, 0) = kNan;
    data(1, 1) = -500.0;  // below the fingerprint range floor
    data(2, 2) = 1e6;     // in range, grossly outlying
    const MeasurementValidator validator;
    const auto res = validator.screen(data, IngestPolicy{}.fingerprint_range);
    EXPECT_EQ(res.nonfinite, 1u);
    EXPECT_EQ(res.out_of_range, 1u);
    EXPECT_GE(res.outliers, 1u);
    EXPECT_EQ(res.row_flagged[0], 1);
    EXPECT_EQ(res.row_flagged[1], 1);
    EXPECT_EQ(res.row_flagged[2], 1);
    EXPECT_EQ(res.row_rejected[2], 1);  // RMS z across channels
    EXPECT_EQ(res.row_flagged[3], 0);
    EXPECT_EQ(res.flagged_rows(), 3u);
}

TEST(Validator, SanitizeImputesIsolatedChannelsAndDropsBadPcms) {
    const StubSource source(2, 6);
    const FabricatedLot lot = stub_lot(12);
    Rng rng(6);
    htd::silicon::DuttDataset raw =
        static_cast<const MeasurementSource&>(source).measure_lot(lot, rng);
    raw.fingerprints(3, 2) = kNan;  // one channel: imputable
    raw.pcms(5, 0) = kNan;          // PCM loss: device quarantined
    const MeasurementValidator validator;
    const IngestResult result = validator.sanitize(raw);
    EXPECT_EQ(result.summary.devices_kept, 11u);
    EXPECT_EQ(result.summary.devices_dropped, 1u);
    EXPECT_EQ(result.summary.channels_imputed, 1u);
    EXPECT_EQ(result.summary.nonfinite_cells, 2u);
    ASSERT_EQ(result.dropped_indices.size(), 1u);
    EXPECT_EQ(result.dropped_indices[0], 5u);
    for (std::size_t r = 0; r < result.dataset.fingerprints.rows(); ++r) {
        for (std::size_t c = 0; c < result.dataset.fingerprints.cols(); ++c) {
            EXPECT_TRUE(std::isfinite(result.dataset.fingerprints(r, c)));
        }
    }
}

TEST(Validator, SanitizeRejectsLotBelowDeviceFloor) {
    const StubSource source(2, 6);
    const FabricatedLot lot = stub_lot(4);  // < min_devices = 8
    Rng rng(7);
    const htd::silicon::DuttDataset raw =
        static_cast<const MeasurementSource&>(source).measure_lot(lot, rng);
    const MeasurementValidator validator;
    EXPECT_THROW((void)validator.sanitize(raw), DataQualityError);
}

TEST(Validator, RetryRecoversFlakyFirstContacts) {
    const FlakyFirstContact source(2, 6);
    const FabricatedLot lot = stub_lot(12);
    const MeasurementValidator validator;
    Rng rng(8);
    const IngestResult result = validator.ingest(lot, source, rng);
    EXPECT_EQ(result.summary.devices_kept, 12u);
    EXPECT_EQ(result.summary.devices_dropped, 0u);
    EXPECT_EQ(result.summary.devices_retried, 12u);
    EXPECT_GE(result.summary.retries_used, 12u);
    EXPECT_EQ(result.summary.channels_imputed, 0u);
}

TEST(Validator, IngestsFaultyRealBenchWithoutCrashing) {
    htd::core::ExperimentConfig config;
    config.n_chips = 10;
    const htd::core::ProcessPair processes =
        htd::core::make_process_pair(config.process_shift_sigma);
    const htd::silicon::Fab fab(processes.silicon);
    Rng fab_rng(9);
    const FabricatedLot lot = fab.fabricate_lot(fab_rng, config.n_chips);
    const htd::silicon::MeasurementBench bench(config.platform);
    FaultModel model;
    model.nan_dropout_rate = 0.05;
    model.spike_rate = 0.02;
    const FaultyBench faulty(bench, model);
    const MeasurementValidator validator;
    Rng rng(10);
    const IngestResult result = validator.ingest(lot, faulty, rng);
    EXPECT_GE(result.summary.devices_kept, validator.policy().min_devices);
    EXPECT_GT(faulty.stats().total_faults(), 0u);
    for (std::size_t r = 0; r < result.dataset.size(); ++r) {
        for (std::size_t c = 0; c < result.dataset.fingerprints.cols(); ++c) {
            EXPECT_TRUE(std::isfinite(result.dataset.fingerprints(r, c)));
        }
        for (std::size_t c = 0; c < result.dataset.pcms.cols(); ++c) {
            EXPECT_TRUE(std::isfinite(result.dataset.pcms(r, c)));
        }
    }
}

// --- Pipeline degradation -------------------------------------------------------

PipelineConfig small_config() {
    PipelineConfig cfg;
    cfg.monte_carlo_samples = 40;
    cfg.synthetic_samples = 2000;
    return cfg;
}

htd::silicon::SpiceSimulator make_simulator() {
    const auto pair = htd::core::make_process_pair(4.5);
    return {htd::silicon::PlatformConfig::paper_default(), pair.spice};
}

Matrix measured_pcms(std::size_t n_chips, std::uint64_t seed) {
    htd::core::ExperimentConfig exp_cfg;
    exp_cfg.n_chips = n_chips;
    Rng fab_rng(seed);
    return htd::core::fabricate_and_measure(exp_cfg, fab_rng).pcms;
}

TEST(Degradation, KmmCollapseFallsBackToB3) {
    PipelineConfig cfg = small_config();
    cfg.kmm_min_effective_sample_size = 1e9;  // unreachable: force collapse
    GoldenFreePipeline pipeline(cfg, make_simulator());
    Rng rng(11);
    pipeline.run_premanufacturing(rng);
    const Matrix pcms = measured_pcms(10, 12);
    EXPECT_NO_THROW(pipeline.run_silicon_stage(pcms, rng));

    EXPECT_TRUE(pipeline.kmm_fallback_applied());
    EXPECT_TRUE(std::isfinite(pipeline.kmm_effective_sample_size()));
    EXPECT_EQ(pipeline.boundary_status(Boundary::kB4).health,
              BoundaryHealth::kDegraded);
    EXPECT_EQ(pipeline.boundary_status(Boundary::kB5).health,
              BoundaryHealth::kDegraded);
    EXPECT_TRUE(pipeline.boundary_ready(Boundary::kB4));
    // B4 trained on S3 verbatim.
    const Matrix& s3 = pipeline.dataset(Boundary::kB3);
    const Matrix& s4 = pipeline.dataset(Boundary::kB4);
    ASSERT_EQ(s4.rows(), s3.rows());
    EXPECT_DOUBLE_EQ(s4(0, 0), s3(0, 0));

    const htd::io::Json report = pipeline.degradation_report();
    EXPECT_TRUE(report.at("kmm_fallback_to_b3").boolean());
    EXPECT_EQ(report.at("boundaries").at(3).at("health").str(), "degraded");
}

TEST(Degradation, KmmCollapseThrowsWhenFallbackDisabled) {
    PipelineConfig cfg = small_config();
    cfg.kmm_min_effective_sample_size = 1e9;
    cfg.kmm_fallback_to_b3 = false;
    GoldenFreePipeline pipeline(cfg, make_simulator());
    Rng rng(13);
    pipeline.run_premanufacturing(rng);
    const Matrix pcms = measured_pcms(10, 14);
    try {
        pipeline.run_silicon_stage(pcms, rng);
        FAIL() << "expected CalibrationCollapseError";
    } catch (const CalibrationCollapseError& e) {
        EXPECT_TRUE(std::isfinite(e.effective_sample_size()));
        EXPECT_DOUBLE_EQ(e.floor(), 1e9);
    }
    // B3 was trained before the collapse and keeps working.
    EXPECT_TRUE(pipeline.boundary_ready(Boundary::kB3));
    EXPECT_FALSE(pipeline.boundary_ready(Boundary::kB4));
    EXPECT_NO_THROW(
        (void)pipeline.classify(Boundary::kB3, pipeline.dataset(Boundary::kB3)));
}

TEST(Degradation, HealthyRunReportsAllBoundariesHealthy) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(15);
    pipeline.run_premanufacturing(rng);
    pipeline.run_silicon_stage(measured_pcms(10, 16), rng);
    for (const Boundary b : htd::core::kAllBoundaries) {
        EXPECT_EQ(pipeline.boundary_status(b).health, BoundaryHealth::kHealthy)
            << htd::core::boundary_name(b);
    }
    EXPECT_FALSE(pipeline.kmm_fallback_applied());
    EXPECT_GE(pipeline.kmm_effective_sample_size(), 4.0);
}

TEST(Degradation, ClassifyRejectsBadProbes) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(17);
    pipeline.run_premanufacturing(rng);
    EXPECT_THROW((void)pipeline.classify(Boundary::kB1, Matrix(2, 3, 0.0)),
                 DimensionError);
    Matrix bad(2, 6, -30.0);
    bad(1, 4) = kNan;
    EXPECT_THROW((void)pipeline.classify(Boundary::kB1, bad), DataQualityError);
}

}  // namespace
