/// Tests for the observability layer: scoped spans (nesting, timing),
/// the metrics registry (counters, gauges, histograms), the JSON sink
/// round-trip through the io::Json parser, and the pipeline RunReport.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>

#include "pipeline/experiment.hpp"
#include "pipeline/report.hpp"
#include "io/json.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"

namespace {

using htd::io::Json;
using htd::obs::Registry;
using htd::obs::ScopedSpan;
using htd::obs::SinkKind;

// The registry is process-global; each test starts from a clean JSON sink
// and leaves the registry disabled for whoever runs next.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        Registry::global().configure(SinkKind::kJson);
        Registry::global().reset();
    }
    void TearDown() override {
        Registry::global().configure(SinkKind::kOff);
        Registry::global().reset();
    }
};

TEST_F(ObsTest, DisabledRegistryRecordsNothing) {
    Registry::global().configure(SinkKind::kOff);
    {
        ScopedSpan span("test.noop");
        EXPECT_FALSE(span.active());
    }
    Registry::global().counter_add("test.noop_counter");
    EXPECT_EQ(Registry::global().span_count(), 0u);
    EXPECT_EQ(Registry::global().counter_value("test.noop_counter"), 0.0);
}

TEST_F(ObsTest, SpansNestAndTimingIsMonotonic) {
    {
        ScopedSpan outer_span("test.outer");
        EXPECT_TRUE(outer_span.active());
        ScopedSpan inner_span("test.inner");
        inner_span.attr("k", 2.0);
    }
    const auto spans = Registry::global().spans();
    ASSERT_EQ(spans.size(), 2u);
    // Spans record on close, innermost first.
    const auto& inner = spans[0];
    const auto& outer = spans[1];
    EXPECT_EQ(inner.name, "test.inner");
    EXPECT_EQ(outer.name, "test.outer");
    EXPECT_EQ(inner.parent, outer.id);
    EXPECT_EQ(inner.depth, 1u);
    EXPECT_EQ(outer.parent, 0u);
    EXPECT_EQ(outer.depth, 0u);
    // The child's window is contained in the parent's.
    EXPECT_GE(inner.wall_ns, 0);
    EXPECT_GE(inner.cpu_ns, 0);
    EXPECT_GE(inner.start_wall_ns, outer.start_wall_ns);
    EXPECT_GE(outer.wall_ns, inner.wall_ns);
    ASSERT_EQ(inner.attrs.size(), 1u);
    EXPECT_EQ(inner.attrs[0].first, "k");
    EXPECT_DOUBLE_EQ(inner.attrs[0].second, 2.0);
}

TEST_F(ObsTest, ClocksAreMonotonic) {
    const std::int64_t w0 = htd::obs::wall_clock_ns();
    const std::int64_t c0 = htd::obs::thread_cpu_ns();
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
    EXPECT_GE(htd::obs::wall_clock_ns(), w0);
    EXPECT_GE(htd::obs::thread_cpu_ns(), c0);
}

TEST_F(ObsTest, CountersGaugesHistogramsAggregate) {
    auto& reg = Registry::global();
    reg.counter_add("test.counter");
    reg.counter_add("test.counter", 2.5);
    EXPECT_DOUBLE_EQ(reg.counter_value("test.counter"), 3.5);
    EXPECT_DOUBLE_EQ(reg.counter_value("test.absent"), 0.0);

    reg.gauge_set("test.gauge", 1.0);
    reg.gauge_set("test.gauge", -4.0);  // last value wins
    EXPECT_DOUBLE_EQ(reg.gauges().at("test.gauge"), -4.0);

    reg.histogram_record("test.hist", 1.5);
    reg.histogram_record("test.hist", 150.0);
    reg.histogram_record("test.hist", 1e9);  // beyond the ladder: overflow
    const auto hist = reg.histograms().at("test.hist");
    EXPECT_EQ(hist.total, 3u);
    EXPECT_DOUBLE_EQ(hist.min, 1.5);
    EXPECT_DOUBLE_EQ(hist.max, 1e9);
    EXPECT_DOUBLE_EQ(hist.mean(), (1.5 + 150.0 + 1e9) / 3.0);
    const auto& bounds = htd::obs::histogram_bucket_bounds();
    ASSERT_EQ(hist.counts.size(), bounds.size() + 1);
    EXPECT_EQ(hist.counts.back(), 1u);  // the 1e9 µs observation
    std::uint64_t bucketed = 0;
    for (const auto c : hist.counts) bucketed += c;
    EXPECT_EQ(bucketed, hist.total);
}

TEST_F(ObsTest, HistogramSnapshotQuantilesInterpolate) {
    auto& reg = Registry::global();
    // 100 observations spread over the 1-2-5 ladder: quantiles must be
    // monotone, clamped to [min, max], and land inside the right buckets.
    for (int i = 1; i <= 100; ++i) {
        reg.histogram_record("test.quant", static_cast<double>(i));
    }
    const auto hist = reg.histograms().at("test.quant");
    const double p50 = hist.quantile(0.50);
    const double p90 = hist.quantile(0.90);
    const double p99 = hist.quantile(0.99);
    EXPECT_LE(hist.quantile(0.0), p50);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, hist.quantile(1.0));
    EXPECT_GE(p50, hist.min);
    EXPECT_LE(hist.quantile(1.0), hist.max);
    // The true p50 is 50; bucket interpolation must stay within the
    // containing (50, 100] ladder bucket.
    EXPECT_GT(p50, 20.0);
    EXPECT_LE(p50, 100.0);
    EXPECT_GT(p99, 50.0);

    // Degenerate cases: empty snapshot and a single observation.
    const htd::obs::HistogramSnapshot empty{};
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    reg.histogram_record("test.single", 42.0);
    const auto single = reg.histograms().at("test.single");
    EXPECT_DOUBLE_EQ(single.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(single.quantile(1.0), 42.0);
}

TEST_F(ObsTest, JsonSinkEmitsQuantilesAndSpansDropped) {
    auto& reg = Registry::global();
    reg.histogram_record("test.q_hist", 10.0);
    reg.histogram_record("test.q_hist", 20.0);
    const Json parsed = Json::parse(htd::obs::observability_json(reg).dump());
    // No spans were dropped, but the counter is always surfaced.
    EXPECT_DOUBLE_EQ(parsed.at("spans_dropped").number(), 0.0);
    const Json& hist = parsed.at("metrics").at("histograms").at("test.q_hist");
    EXPECT_TRUE(hist.contains("p50"));
    EXPECT_TRUE(hist.contains("p90"));
    EXPECT_TRUE(hist.contains("p99"));
    EXPECT_GE(hist.at("p90").number(), hist.at("p50").number());
}

TEST_F(ObsTest, SpanStorageIsCappedButHistogramKeepsAggregating) {
    constexpr std::size_t kExtra = 10;
    for (std::size_t i = 0; i < Registry::kMaxStoredSpans + kExtra; ++i) {
        ScopedSpan span("test.capped");
    }
    auto& reg = Registry::global();
    EXPECT_EQ(reg.span_count(), Registry::kMaxStoredSpans);
    EXPECT_DOUBLE_EQ(reg.counter_value("obs.spans_dropped"),
                     static_cast<double>(kExtra));
    EXPECT_DOUBLE_EQ(reg.spans_dropped(), static_cast<double>(kExtra));
    const auto hist = reg.histograms().at("span.test.capped");
    EXPECT_EQ(hist.total, Registry::kMaxStoredSpans + kExtra);

    // Both sinks surface the drop: top-level JSON field and the text trailer.
    const Json parsed = Json::parse(htd::obs::observability_json(reg).dump());
    EXPECT_DOUBLE_EQ(parsed.at("spans_dropped").number(),
                     static_cast<double>(kExtra));
    const std::string text = htd::obs::metrics_text(reg);
    EXPECT_NE(text.find("spans dropped"), std::string::npos);
}

TEST_F(ObsTest, JsonSinkRoundTripsThroughParser) {
    auto& reg = Registry::global();
    {
        ScopedSpan span("test.roundtrip");
        span.attr("samples", 42.0);
        reg.counter_add("test.rt_counter", 2.0);
        reg.histogram_record("test.rt_hist", 10.0);
    }
    const Json parsed = Json::parse(htd::obs::observability_json(reg).dump(2));
    const Json& spans = parsed.at("spans");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans.at(0).at("name").str(), "test.roundtrip");
    EXPECT_DOUBLE_EQ(spans.at(0).at("attrs").at("samples").number(), 42.0);
    EXPECT_GE(spans.at(0).at("wall_ns").number(), 0.0);
    const Json& metrics = parsed.at("metrics");
    EXPECT_DOUBLE_EQ(metrics.at("counters").at("test.rt_counter").number(), 2.0);
    EXPECT_TRUE(metrics.at("histograms").contains("test.rt_hist"));
    // Every span feeds a "span.<name>" histogram automatically.
    EXPECT_TRUE(metrics.at("histograms").contains("span.test.roundtrip"));
}

TEST_F(ObsTest, RunReportWritesParseableFile) {
    {
        ScopedSpan span("test.report_span");
    }
    htd::obs::RunReport report("obs_test");
    Json section = Json::object();
    section.set("k", 1);
    report.set("section", std::move(section));
    report.capture_observability();

    const std::string path =
        (std::filesystem::temp_directory_path() / "htd_obs_test_report.json").string();
    report.write(path);
    const Json parsed = Json::parse_file(path);
    std::filesystem::remove(path);
    EXPECT_EQ(parsed.at("run").str(), "obs_test");
    EXPECT_EQ(parsed.at("schema").str(), "htd.run_report.v2");
    EXPECT_DOUBLE_EQ(parsed.at("section").at("k").number(), 1.0);
    const Json& spans = parsed.at("observability").at("spans");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans.at(0).at("name").str(), "test.report_span");
}

TEST_F(ObsTest, WorkCountersAccumulateAndResetAsFirstClassMetrics) {
    auto& reg = Registry::global();
    reg.work_add("work.test.kernel_evals", 100.0);
    reg.work_add("work.test.kernel_evals", 150.0);
    reg.work_add("work.test.samples", 8.0);
    EXPECT_DOUBLE_EQ(reg.work_value("work.test.kernel_evals"), 250.0);
    EXPECT_DOUBLE_EQ(reg.work_value("work.test.missing"), 0.0);
    const auto works = reg.works();
    ASSERT_EQ(works.size(), 2u);
    EXPECT_DOUBLE_EQ(works.at("work.test.samples"), 8.0);

    // Work is its own metric kind: it lands in the "work" section of the
    // JSON sink, not under counters.
    const Json metrics = Json::parse(htd::obs::metrics_json(reg).dump(2));
    EXPECT_DOUBLE_EQ(metrics.at("work").at("work.test.kernel_evals").number(),
                     250.0);
    EXPECT_FALSE(metrics.at("counters").contains("work.test.kernel_evals"));

    reg.reset();
    EXPECT_TRUE(reg.works().empty());

    // A disabled registry drops work like every other metric.
    reg.configure(SinkKind::kOff);
    reg.work_add("work.test.kernel_evals", 5.0);
    EXPECT_DOUBLE_EQ(reg.work_value("work.test.kernel_evals"), 0.0);
}

TEST_F(ObsTest, SinkKindFromEnvNamesValidValuesOnMisconfiguration) {
    using htd::obs::sink_kind_from_env;
    EXPECT_EQ(sink_kind_from_env(""), SinkKind::kOff);
    EXPECT_EQ(sink_kind_from_env("off"), SinkKind::kOff);
    EXPECT_EQ(sink_kind_from_env("text"), SinkKind::kText);
    EXPECT_EQ(sink_kind_from_env("json"), SinkKind::kJson);

    std::string error;
    EXPECT_EQ(sink_kind_from_env("verbose", &error), SinkKind::kInherit);
    EXPECT_NE(error.find("'verbose'"), std::string::npos);
    // The warning must name every valid spelling — it is the only clue the
    // user gets for a typo'd HTD_OBS.
    for (const char* valid : {"off", "text", "json"}) {
        EXPECT_NE(error.find(valid), std::string::npos) << valid;
    }
}

TEST_F(ObsTest, BoolEnvValueNamesValidValuesOnMisconfiguration) {
    // The boolean observability toggles (HTD_OBS_TRACE_NORMALIZE,
    // HTD_OBS_RESOURCES, HTD_OBS_JOURNAL_NORMALIZE) get the same typo
    // diagnostics a misspelled HTD_OBS gets.
    using htd::obs::bool_env_value;
    EXPECT_FALSE(bool_env_value("HTD_OBS_RESOURCES", ""));
    EXPECT_FALSE(bool_env_value("HTD_OBS_RESOURCES", "0"));
    EXPECT_TRUE(bool_env_value("HTD_OBS_RESOURCES", "1"));

    std::string error;
    EXPECT_TRUE(bool_env_value("HTD_OBS_TRACE_NORMALIZE", "1", &error));
    EXPECT_TRUE(error.empty());

    // A typo is treated as off, and the warning names the variable, the
    // bad value, and every valid spelling.
    EXPECT_FALSE(bool_env_value("HTD_OBS_TRACE_NORMALIZE", "yes", &error));
    EXPECT_NE(error.find("HTD_OBS_TRACE_NORMALIZE"), std::string::npos);
    EXPECT_NE(error.find("'yes'"), std::string::npos);
    EXPECT_NE(error.find("0, 1"), std::string::npos);
}

TEST_F(ObsTest, JsonSinkEscapesHostileNamesLosslessly) {
    // Span/metric names and attr keys with control characters, embedded
    // quotes/backslashes, and non-ASCII UTF-8 must survive the dump ->
    // RFC 8259 parse round trip byte-for-byte.
    const std::string hostile_span = "test.\"quoted\"\\back\nslash\tname";
    const std::string hostile_attr = "attr\x01with\x1f controls";
    const std::string hostile_counter = "count.müller.λ→µ";
    const std::string hostile_work = "work.kärnel.evals\x7f";
    auto& reg = Registry::global();
    {
        ScopedSpan span(hostile_span);
        span.attr(hostile_attr, 1.5);
    }
    reg.counter_add(hostile_counter, 3.0);
    reg.work_add(hostile_work, 7.0);

    const Json parsed = Json::parse(htd::obs::observability_json(reg).dump(2));
    const Json& span = parsed.at("spans").at(0);
    EXPECT_EQ(span.at("name").str(), hostile_span);
    EXPECT_DOUBLE_EQ(span.at("attrs").at(hostile_attr).number(), 1.5);
    EXPECT_DOUBLE_EQ(
        parsed.at("metrics").at("counters").at(hostile_counter).number(), 3.0);
    EXPECT_DOUBLE_EQ(parsed.at("metrics").at("work").at(hostile_work).number(),
                     7.0);
    // The per-span histogram key embeds the hostile name too.
    EXPECT_TRUE(parsed.at("metrics").at("histograms").contains("span." +
                                                               hostile_span));
}

TEST_F(ObsTest, SpanRecordsCarryThreadIndex) {
    { ScopedSpan span("test.thread_stamp"); }
    const auto spans = Registry::global().spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_GT(spans[0].thread, 0u);
    EXPECT_EQ(spans[0].thread, Registry::current_thread_index());
    const Json doc = Json::parse(htd::obs::spans_json(Registry::global()).dump(2));
    EXPECT_DOUBLE_EQ(doc.at(0).at("thread").number(),
                     static_cast<double>(spans[0].thread));
}

TEST_F(ObsTest, PipelineRunReportCoversAllBoundaries) {
    namespace core = htd::core;
    core::ExperimentConfig config;
    config.n_chips = 8;
    config.pipeline.synthetic_samples = 5000;

    htd::rng::Rng master(config.seed);
    htd::rng::Rng fab_rng = master.split();
    htd::rng::Rng sim_rng = master.split();
    htd::rng::Rng pipe_rng = master.split();
    const htd::silicon::DuttDataset measured =
        core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline,
        htd::silicon::SpiceSimulator(config.platform, processes.spice));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);

    const htd::obs::RunReport report =
        core::pipeline_run_report(pipeline, "obs_pipeline_test", &measured);
    const Json parsed = Json::parse(report.json().dump());
    EXPECT_EQ(parsed.at("run").str(), "obs_pipeline_test");

    const Json& boundaries = parsed.at("boundaries");
    ASSERT_EQ(boundaries.size(), 5u);
    std::set<std::string> names;
    for (const Json& entry : boundaries.elements()) {
        names.insert(entry.at("boundary").str());
        EXPECT_GT(entry.at("support_vectors").number(), 0.0);
        EXPECT_GT(entry.at("dataset_rows").number(), 0.0);
        EXPECT_TRUE(entry.contains("metrics"));
        EXPECT_GE(entry.at("metrics").at("accuracy").number(), 0.0);
    }
    EXPECT_EQ(names, (std::set<std::string>{"B1", "B2", "B3", "B4", "B5"}));

    EXPECT_TRUE(parsed.contains("calibration"));
    EXPECT_GT(parsed.at("calibration").at("kmm_effective_sample_size").number(), 0.0);

    // The timed stage spans landed in the observability section.
    std::set<std::string> span_names;
    for (const Json& span : parsed.at("observability").at("spans").elements()) {
        span_names.insert(span.at("name").str());
    }
    EXPECT_TRUE(span_names.count("pipeline.stage1_premanufacturing"));
    EXPECT_TRUE(span_names.count("pipeline.stage2_silicon"));
    EXPECT_TRUE(span_names.count("pipeline.monte_carlo"));
    EXPECT_TRUE(span_names.count("mars.bank_fit"));
    EXPECT_TRUE(span_names.count("kmm.calibrate"));
}

}  // namespace
