/// Tests for the golden-free detection pipeline's mechanics: stage ordering,
/// dataset shapes, boundary readiness, and the golden-chip baseline wrapper.
/// The statistical end-to-end behaviour is covered by test_integration.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/errors.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/pipeline.hpp"

namespace {

using htd::core::Boundary;
using htd::core::BoundaryUnavailableError;
using htd::core::ConfigError;
using htd::core::DataQualityError;
using htd::core::DimensionError;
using htd::core::StageOrderError;
using htd::core::boundary_name;
using htd::core::dataset_name;
using htd::core::GoldenChipBaseline;
using htd::core::GoldenFreePipeline;
using htd::core::kAllBoundaries;
using htd::core::PipelineConfig;
using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::rng::Rng;
using htd::silicon::PlatformConfig;
using htd::silicon::SpiceSimulator;

/// Small, fast pipeline configuration used throughout this file.
PipelineConfig small_config() {
    PipelineConfig cfg;
    cfg.monte_carlo_samples = 40;
    cfg.synthetic_samples = 2000;
    return cfg;
}

SpiceSimulator make_simulator() {
    const auto pair = htd::core::make_process_pair(4.5);
    return {PlatformConfig::paper_default(), pair.spice};
}

TEST(BoundaryNames, AllDistinct) {
    EXPECT_EQ(boundary_name(Boundary::kB1), "B1");
    EXPECT_EQ(boundary_name(Boundary::kB5), "B5");
    EXPECT_EQ(dataset_name(Boundary::kB3), "S3");
    EXPECT_EQ(kAllBoundaries.size(), 5u);
}

TEST(Pipeline, RejectsDegenerateConfig) {
    PipelineConfig cfg = small_config();
    cfg.monte_carlo_samples = 1;
    EXPECT_THROW(GoldenFreePipeline(cfg, make_simulator()), ConfigError);
    cfg = small_config();
    cfg.synthetic_samples = 0;
    EXPECT_THROW(GoldenFreePipeline(cfg, make_simulator()), ConfigError);
    cfg = small_config();
    cfg.kmm_min_effective_sample_size = -1.0;
    EXPECT_THROW(GoldenFreePipeline(cfg, make_simulator()), ConfigError);
}

TEST(Pipeline, StageOrderingEnforced) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(1);
    // Silicon stage before pre-manufacturing: error.
    EXPECT_THROW(pipeline.run_silicon_stage(Matrix(10, 1, 1.0), rng), StageOrderError);
    EXPECT_THROW((void)pipeline.regressions(), StageOrderError);
    EXPECT_THROW((void)pipeline.simulated_pcms(), StageOrderError);
    EXPECT_THROW((void)pipeline.dataset(Boundary::kB1), BoundaryUnavailableError);
}

TEST(Pipeline, PremanufacturingEnablesB1B2Only) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(2);
    pipeline.run_premanufacturing(rng);
    EXPECT_TRUE(pipeline.boundary_ready(Boundary::kB1));
    EXPECT_TRUE(pipeline.boundary_ready(Boundary::kB2));
    EXPECT_FALSE(pipeline.boundary_ready(Boundary::kB3));
    EXPECT_FALSE(pipeline.boundary_ready(Boundary::kB4));
    EXPECT_FALSE(pipeline.boundary_ready(Boundary::kB5));
    EXPECT_THROW((void)pipeline.classify(Boundary::kB3, Matrix(1, 6)),
                 BoundaryUnavailableError);
}

TEST(Pipeline, DatasetShapesMatchPaper) {
    PipelineConfig cfg = small_config();
    GoldenFreePipeline pipeline(cfg, make_simulator());
    Rng rng(3);
    pipeline.run_premanufacturing(rng);

    // S1 is n x nm; S2 is M' x nm.
    EXPECT_EQ(pipeline.dataset(Boundary::kB1).rows(), cfg.monte_carlo_samples);
    EXPECT_EQ(pipeline.dataset(Boundary::kB1).cols(), 6u);
    EXPECT_EQ(pipeline.dataset(Boundary::kB2).rows(), cfg.synthetic_samples);

    // Feed a plausible silicon PCM population (log space handled internally).
    htd::core::ExperimentConfig exp_cfg;
    exp_cfg.n_chips = 10;
    Rng fab_rng(4);
    const auto measured = htd::core::fabricate_and_measure(exp_cfg, fab_rng);
    pipeline.run_silicon_stage(measured.pcms, rng);

    EXPECT_EQ(pipeline.dataset(Boundary::kB3).rows(), measured.pcms.rows());
    EXPECT_EQ(pipeline.dataset(Boundary::kB4).rows(), cfg.monte_carlo_samples);
    EXPECT_EQ(pipeline.dataset(Boundary::kB5).rows(), cfg.synthetic_samples);
    EXPECT_TRUE(pipeline.calibration_result().has_value());
}

TEST(Pipeline, SiliconStageValidatesInput) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(5);
    pipeline.run_premanufacturing(rng);
    EXPECT_THROW(pipeline.run_silicon_stage(Matrix(10, 3, 1.0), rng),
                 DimensionError);
    EXPECT_THROW(pipeline.run_silicon_stage(Matrix(0, 1), rng), DataQualityError);
    // Log transform rejects non-positive PCM values.
    EXPECT_THROW(pipeline.run_silicon_stage(Matrix(4, 1, -1.0), rng),
                 DataQualityError);
    // Non-finite PCM measurements are rejected before any training.
    Matrix bad(4, 1, 1.0);
    bad(2, 0) = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(pipeline.run_silicon_stage(bad, rng), DataQualityError);
}

TEST(Pipeline, ClassifyReturnsOneVerdictPerRow) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(6);
    pipeline.run_premanufacturing(rng);
    const Matrix probes(7, 6, -3.0);
    EXPECT_EQ(pipeline.classify(Boundary::kB1, probes).size(), 7u);
    EXPECT_EQ(pipeline.decision_values(Boundary::kB2, probes).size(), 7u);
}

TEST(Pipeline, B1ContainsItsOwnTrainingCore) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(7);
    pipeline.run_premanufacturing(rng);
    const Matrix& s1 = pipeline.dataset(Boundary::kB1);
    const auto verdicts = pipeline.classify(Boundary::kB1, s1);
    std::size_t inside = 0;
    for (bool v : verdicts) inside += v ? 1 : 0;
    // At least 1 - nu of the training samples are inside their own boundary.
    EXPECT_GE(inside, s1.rows() * 8 / 10);
}

TEST(Pipeline, MarsBankHasOneModelPerFingerprint) {
    GoldenFreePipeline pipeline(small_config(), make_simulator());
    Rng rng(8);
    pipeline.run_premanufacturing(rng);
    EXPECT_EQ(pipeline.regressions().output_dim(), 6u);
    for (std::size_t j = 0; j < 6; ++j) {
        EXPECT_GT(pipeline.regressions().model(j).r_squared(), 0.5);
    }
}

TEST(Pipeline, LogTransformAppliedToStoredPcms) {
    PipelineConfig cfg = small_config();
    cfg.log_transform_pcm = true;
    GoldenFreePipeline pipeline(cfg, make_simulator());
    Rng rng(9);
    pipeline.run_premanufacturing(rng);
    // Stored PCMs are logs of ns-scale delays: small negative numbers, not
    // the raw positive delays.
    const double v = pipeline.simulated_pcms()(0, 0);
    EXPECT_LT(v, 0.0);
    EXPECT_GT(v, -10.0);
}

// --- GoldenChipBaseline ---------------------------------------------------------

TEST(Baseline, TrainsAndClassifies) {
    Rng rng(10);
    Matrix golden(60, 2);
    for (std::size_t r = 0; r < 60; ++r) {
        golden(r, 0) = rng.normal(0.0, 1.0);
        golden(r, 1) = rng.normal(0.0, 1.0);
    }
    GoldenChipBaseline baseline;
    baseline.fit(golden);
    const auto verdicts = baseline.classify(Matrix(1, 2, 0.0));
    EXPECT_TRUE(verdicts[0]);
    const auto far = baseline.classify(Matrix(1, 2, 25.0));
    EXPECT_FALSE(far[0]);
}

}  // namespace
