/// Tests for the hierarchical process-variation model and the
/// Spice-vs-silicon operating-point machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "process/variation_model.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::process::kParamCount;
using htd::process::nominal_350nm;
using htd::process::Param;
using htd::process::ProcessPoint;
using htd::process::ProcessShift;
using htd::process::ProcessVariationModel;
using htd::process::VarianceSplit;
using htd::rng::Rng;

TEST(ProcessPointTest, NamedAccessorsMatchIndices) {
    ProcessPoint p = nominal_350nm();
    EXPECT_DOUBLE_EQ(p.vth_n(), p.get(Param::kVthN));
    EXPECT_DOUBLE_EQ(p.mu_p(), p.get(Param::kMuP));
    p.set(Param::kTox, 8.0);
    EXPECT_DOUBLE_EQ(p.tox_nm(), 8.0);
}

TEST(ProcessPointTest, VectorRoundTrip) {
    const ProcessPoint p = nominal_350nm();
    EXPECT_EQ(ProcessPoint::from_vector(p.to_vector()), p);
    EXPECT_THROW((void)ProcessPoint::from_vector(Vector(3)), std::invalid_argument);
}

TEST(ProcessPointTest, ParamNames) {
    EXPECT_EQ(htd::process::param_name(Param::kVthN), "vth_n");
    EXPECT_EQ(htd::process::param_name(Param::kCjScale), "cj_scale");
}

TEST(ProcessPointTest, Nominal350nmPhysicallyPlausible) {
    const ProcessPoint p = nominal_350nm();
    EXPECT_GT(p.vth_n(), 0.3);
    EXPECT_LT(p.vth_n(), 1.0);
    EXPECT_GT(p.mu_n(), p.mu_p());  // electrons faster than holes
    EXPECT_NEAR(p.leff_um(), 0.35, 1e-12);
}

TEST(VariationModel, RejectsBadConstruction) {
    const Vector sigma(kParamCount, 0.05);
    const Matrix corr = Matrix::identity(kParamCount);
    EXPECT_THROW(ProcessVariationModel(nominal_350nm(), Vector(3), corr, {}),
                 std::invalid_argument);
    EXPECT_THROW(ProcessVariationModel(nominal_350nm(), sigma, Matrix(3, 3), {}),
                 std::invalid_argument);
    VarianceSplit bad_split;
    bad_split.lot = 0.9;  // sums to > 1
    EXPECT_THROW(ProcessVariationModel(nominal_350nm(), sigma, corr, bad_split),
                 std::invalid_argument);
    Vector neg_sigma = sigma;
    neg_sigma[0] = -0.1;
    EXPECT_THROW(ProcessVariationModel(nominal_350nm(), neg_sigma, corr, {}),
                 std::invalid_argument);
}

TEST(VariationModel, MonteCarloMatchesConfiguredSigmas) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(1);
    const Matrix samples = model.sample_monte_carlo_n(rng, 20000);
    const Vector means = htd::stats::column_means(samples);
    const Vector sds = htd::stats::column_stddevs(samples);
    for (std::size_t i = 0; i < kParamCount; ++i) {
        const double nominal = model.nominal().values[i];
        EXPECT_NEAR(means[i], nominal, 0.05 * std::abs(nominal) + 1e-9);
        EXPECT_NEAR(sds[i], model.sigma()[i], 0.05 * model.sigma()[i] + 1e-12);
    }
}

TEST(VariationModel, ConfiguredCorrelationsAppearInSamples) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(2);
    const Matrix samples = model.sample_monte_carlo_n(rng, 20000);
    const Vector mu_n = samples.col(static_cast<std::size_t>(Param::kMuN));
    const Vector mu_p = samples.col(static_cast<std::size_t>(Param::kMuP));
    std::vector<double> a(mu_n.begin(), mu_n.end());
    std::vector<double> b(mu_p.begin(), mu_p.end());
    EXPECT_NEAR(htd::stats::pearson_correlation(a, b), 0.95, 0.02);

    const Vector vth = samples.col(static_cast<std::size_t>(Param::kVthN));
    std::vector<double> v(vth.begin(), vth.end());
    EXPECT_LT(htd::stats::pearson_correlation(v, a), 0.0);  // anti-correlated
}

TEST(VariationModel, HierarchyVarianceDecomposes) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(3);
    // Devices in ONE lot+wafer context spread with only the die fraction.
    const Vector lot = model.sample_lot_offset(rng);
    const Vector wafer = model.sample_wafer_offset(rng);
    Matrix within(2000, kParamCount);
    for (std::size_t i = 0; i < 2000; ++i) {
        within.set_row(i, model.sample_die(rng, lot, wafer).to_vector());
    }
    const Vector within_sd = htd::stats::column_stddevs(within);
    const std::size_t mu_idx = static_cast<std::size_t>(Param::kMuN);
    const double expected = model.sigma()[mu_idx] * std::sqrt(model.split().die);
    EXPECT_NEAR(within_sd[mu_idx], expected, 0.1 * expected);
    // Within-lot spread is strictly below the full process spread.
    EXPECT_LT(within_sd[mu_idx], model.sigma()[mu_idx]);
}

TEST(VariationModel, LotOffsetsVaryAcrossLots) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(4);
    Matrix lots(2000, kParamCount);
    for (std::size_t i = 0; i < 2000; ++i) lots.set_row(i, model.sample_lot_offset(rng));
    const Vector sd = htd::stats::column_stddevs(lots);
    const std::size_t mu_idx = static_cast<std::size_t>(Param::kMuN);
    const double expected = model.sigma()[mu_idx] * std::sqrt(model.split().lot);
    EXPECT_NEAR(sd[mu_idx], expected, 0.1 * expected);
}

TEST(VariationModel, PerturbWithinDieIsSmall) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(5);
    const ProcessPoint die = model.sample_monte_carlo(rng);
    Matrix versions(500, kParamCount);
    for (std::size_t i = 0; i < 500; ++i) {
        versions.set_row(i, model.perturb_within_die(rng, die, 0.15).to_vector());
    }
    const Vector sd = htd::stats::column_stddevs(versions);
    const std::size_t mu_idx = static_cast<std::size_t>(Param::kMuN);
    EXPECT_LT(sd[mu_idx], 0.2 * model.sigma()[mu_idx]);
    EXPECT_THROW((void)model.perturb_within_die(rng, die, -0.1), std::invalid_argument);
}

TEST(VariationModel, ZeroFractionPerturbIsIdentity) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(6);
    const ProcessPoint die = model.sample_monte_carlo(rng);
    EXPECT_EQ(model.perturb_within_die(rng, die, 0.0), die);
}

// --- shifts -----------------------------------------------------------------------

TEST(ShiftTest, SlowCornerRaisesVthLowersMobility) {
    const ProcessShift s = ProcessShift::slow_corner(2.0);
    EXPECT_GT(s.get(Param::kVthN), 0.0);
    EXPECT_LT(s.get(Param::kMuN), 0.0);
    const ProcessShift f = ProcessShift::fast_corner(2.0);
    EXPECT_LT(f.get(Param::kVthN), 0.0);
    EXPECT_GT(f.get(Param::kMuN), 0.0);
}

TEST(ShiftTest, ShiftedModelMovesNominalKeepsSigma) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    const ProcessVariationModel shifted = model.shifted(ProcessShift::slow_corner(3.0));
    const std::size_t vth_idx = static_cast<std::size_t>(Param::kVthN);
    EXPECT_NEAR(shifted.nominal().values[vth_idx],
                model.nominal().values[vth_idx] + 3.0 * model.sigma()[vth_idx], 1e-12);
    // Sigma (absolute) unchanged: spread belongs to the technology.
    EXPECT_EQ(shifted.sigma()[vth_idx], model.sigma()[vth_idx]);
}

TEST(ShiftTest, ZeroShiftIsIdentity) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    const ProcessVariationModel same = model.shifted(ProcessShift{});
    EXPECT_EQ(same.nominal(), model.nominal());
}

TEST(ShiftTest, RoundTripShiftCancels) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    const ProcessVariationModel there =
        model.shifted(ProcessShift::slow_corner(2.5));
    const ProcessVariationModel back =
        there.shifted(ProcessShift::fast_corner(2.5));
    for (std::size_t i = 0; i < kParamCount; ++i) {
        EXPECT_NEAR(back.nominal().values[i], model.nominal().values[i],
                    1e-9 * std::abs(model.nominal().values[i]));
    }
}

TEST(VariationModel, SampleDieRejectsBadOffsets) {
    const ProcessVariationModel model = ProcessVariationModel::default_350nm();
    Rng rng(7);
    EXPECT_THROW((void)model.sample_die(rng, Vector(3), Vector(kParamCount)),
                 std::invalid_argument);
}

/// Property: Monte Carlo samples stay physically sane across magnitudes of
/// drift (no negative oxide thickness or mobility at realistic shifts).
class ShiftSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShiftSweep, SamplesStayPhysical) {
    const ProcessVariationModel model =
        ProcessVariationModel::default_350nm().shifted(
            ProcessShift::slow_corner(GetParam()));
    Rng rng(8);
    for (int i = 0; i < 200; ++i) {
        const ProcessPoint p = model.sample_monte_carlo(rng);
        EXPECT_GT(p.tox_nm(), 0.0);
        EXPECT_GT(p.mu_n(), 0.0);
        EXPECT_GT(p.mu_p(), 0.0);
        EXPECT_GT(p.leff_um(), 0.0);
        EXPECT_GT(p.rsheet(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, ShiftSweep, ::testing::Values(0.0, 1.0, 3.0, 4.5, 6.0));

}  // namespace
