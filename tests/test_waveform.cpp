/// Tests for time-domain waveform synthesis and the DFT spectrum analyzer,
/// including cross-validation of the behavioural PowerMeter against actual
/// sampled-waveform power.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "process/process_point.hpp"
#include "rf/uwb.hpp"
#include "rf/waveform.hpp"
#include "trojan/trojan.hpp"

namespace {

using htd::rf::average_power_w;
using htd::rf::SampledWaveform;
using htd::rf::SpectrumAnalyzer;
using htd::rf::synthesize_block;
using htd::trojan::PulseObservation;

std::vector<PulseObservation> one_pulse(double amp, double freq, double tau) {
    std::vector<PulseObservation> block(8);
    block[4] = {true, amp, freq, tau};
    return block;
}

SampledWaveform pure_tone(double amp, double freq_ghz, double duration_ns,
                          double rate_ghz) {
    SampledWaveform wave;
    wave.sample_rate_ghz = rate_ghz;
    const auto n = static_cast<std::size_t>(duration_ns * rate_ghz);
    wave.samples.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        wave.samples[k] =
            amp * std::cos(2.0 * std::numbers::pi * freq_ghz *
                           static_cast<double>(k) / rate_ghz);
    }
    return wave;
}

TEST(Synthesis, RejectsBadParameters) {
    const auto block = one_pulse(1.0, 4.0, 0.5);
    EXPECT_THROW((void)synthesize_block(block, 0.0, 20.0), std::invalid_argument);
    EXPECT_THROW((void)synthesize_block(block, 10.0, 0.0), std::invalid_argument);
    // Nyquist violation: 4 GHz pulse sampled at 6 GHz.
    EXPECT_THROW((void)synthesize_block(block, 10.0, 6.0), std::invalid_argument);
}

TEST(Synthesis, SilentBlockIsAllZero) {
    const std::vector<PulseObservation> silent(8);
    const SampledWaveform wave = synthesize_block(silent, 10.0, 20.0);
    for (const double v : wave.samples) EXPECT_EQ(v, 0.0);
    EXPECT_NEAR(wave.duration_ns(), 80.0, 0.1);
}

TEST(Synthesis, PulsePeaksNearSlotCenter) {
    const SampledWaveform wave = synthesize_block(one_pulse(1.0, 4.0, 0.5), 10.0, 40.0);
    std::size_t argmax = 0;
    for (std::size_t k = 1; k < wave.samples.size(); ++k) {
        if (std::abs(wave.samples[k]) > std::abs(wave.samples[argmax])) argmax = k;
    }
    const double t_peak = static_cast<double>(argmax) / 40.0;
    EXPECT_NEAR(t_peak, 45.0, 0.6);  // slot 4 center = 45 ns
}

TEST(Synthesis, EnergyMatchesClosedForm) {
    // Gaussian pulse energy into R: A^2 tau sqrt(pi) / 2 / R.
    const double amp = 1.0, tau = 0.5;
    const SampledWaveform wave = synthesize_block(one_pulse(amp, 4.0, tau), 10.0, 80.0);
    const double avg_w = average_power_w(wave, 50.0);
    const double energy_measured = avg_w * wave.duration_ns();  // V^2/ohm * ns
    const double energy_expected =
        amp * amp * tau * std::sqrt(std::numbers::pi) / 2.0 / 50.0;
    EXPECT_NEAR(energy_measured, energy_expected, 0.05 * energy_expected);
}

TEST(Analyzer, ToneLandsInCorrectBin) {
    const SampledWaveform wave = pure_tone(1.0, 4.0, 100.0, 20.0);
    const SpectrumAnalyzer analyzer(0.05);
    const double at_tone = analyzer.tone_power_w(wave, 4.0);
    const double off_tone = analyzer.tone_power_w(wave, 5.0);
    EXPECT_GT(at_tone, 100.0 * off_tone);
    // Amplitude-1 tone into 50 ohm = 10 mW average power.
    EXPECT_NEAR(at_tone, 0.01, 0.002);
}

TEST(Analyzer, BandPowerScalesWithAmplitudeSquared) {
    const SpectrumAnalyzer analyzer(0.05);
    const SampledWaveform a = pure_tone(1.0, 4.0, 100.0, 20.0);
    const SampledWaveform b = pure_tone(2.0, 4.0, 100.0, 20.0);
    const double pa = analyzer.band_power_w(a, 3.5, 4.5);
    const double pb = analyzer.band_power_w(b, 3.5, 4.5);
    EXPECT_NEAR(pb / pa, 4.0, 0.1);
}

TEST(Analyzer, RejectsEmptyBandAndWaveform) {
    const SpectrumAnalyzer analyzer;
    EXPECT_THROW(SpectrumAnalyzer(0.0), std::invalid_argument);
    const SampledWaveform wave = pure_tone(1.0, 4.0, 10.0, 20.0);
    EXPECT_THROW((void)analyzer.band_power_w(wave, 4.0, 4.0), std::invalid_argument);
    SampledWaveform empty;
    EXPECT_THROW((void)analyzer.tone_power_w(empty, 4.0), std::invalid_argument);
}

TEST(Analyzer, SweepShowsTrojanFrequencyShift) {
    // A frequency-leak Trojan moves modulated pulses up in the spectrum;
    // the sweep of a modulated block shows power at both carrier positions.
    std::vector<PulseObservation> block(16);
    for (std::size_t i = 0; i < 16; ++i) {
        block[i] = {true, 1.0, i % 2 == 0 ? 4.0 : 4.6, 0.5};
    }
    const SampledWaveform wave = synthesize_block(block, 10.0, 20.0);
    const SpectrumAnalyzer analyzer(0.05);
    const double p_base = analyzer.band_power_w(wave, 3.8, 4.2);
    const double p_shifted = analyzer.band_power_w(wave, 4.4, 4.8);
    const double p_between = analyzer.band_power_w(wave, 4.25, 4.35);
    EXPECT_GT(p_base, 3.0 * p_between);
    EXPECT_GT(p_shifted, 3.0 * p_between);
}

TEST(CrossValidation, BehaviouralMeterTracksWaveformPower) {
    // The pipeline's analytic PowerMeter and an actual sampled-waveform
    // measurement must agree on *relative* power across devices; check the
    // ratio between a strong and a weak transmitter.
    using htd::process::nominal_350nm;
    htd::rf::PowerMeter::Options mopts;
    mopts.center_freq_ghz = 4.0;  // wide, centered band for a fair comparison
    mopts.bandwidth_ghz = 3.0;
    const htd::rf::PowerMeter meter(mopts);

    auto block_with_amp = [&](double amp) {
        std::vector<PulseObservation> block(32);
        for (std::size_t i = 0; i < 32; i += 2) block[i] = {true, amp, 4.0, 0.5};
        return block;
    };
    const auto weak = block_with_amp(0.8);
    const auto strong = block_with_amp(1.3);

    const double analytic_ratio =
        meter.average_power_mw(strong) / meter.average_power_mw(weak);
    const double waveform_ratio =
        average_power_w(synthesize_block(strong, 10.0, 20.0)) /
        average_power_w(synthesize_block(weak, 10.0, 20.0));
    EXPECT_NEAR(analytic_ratio, waveform_ratio, 0.02 * analytic_ratio);
}

}  // namespace
