/// Tests for descriptive statistics, histograms and running accumulators.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::stats::Histogram;
using htd::stats::RunningStats;

TEST(Descriptive, Mean) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(htd::stats::mean(xs), 2.5);
    EXPECT_THROW((void)htd::stats::mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, VarianceUnbiased) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(htd::stats::variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_THROW((void)htd::stats::variance(std::vector<double>{1.0}),
                 std::invalid_argument);
}

TEST(Descriptive, MedianOddEven) {
    EXPECT_DOUBLE_EQ(htd::stats::median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(htd::stats::median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(htd::stats::quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(htd::stats::quantile(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(htd::stats::quantile(xs, 0.25), 2.5);
    EXPECT_THROW((void)htd::stats::quantile(xs, 1.5), std::invalid_argument);
}

TEST(Descriptive, PearsonCorrelation) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{2.0, 4.0, 6.0};
    EXPECT_NEAR(htd::stats::pearson_correlation(xs, ys), 1.0, 1e-12);
    const std::vector<double> anti{3.0, 2.0, 1.0};
    EXPECT_NEAR(htd::stats::pearson_correlation(xs, anti), -1.0, 1e-12);
    const std::vector<double> flat{5.0, 5.0, 5.0};
    EXPECT_THROW((void)htd::stats::pearson_correlation(xs, flat), std::invalid_argument);
}

TEST(Descriptive, ColumnMeansAndStds) {
    const Matrix data{{1.0, 10.0}, {3.0, 30.0}};
    const Vector m = htd::stats::column_means(data);
    EXPECT_EQ(m, (Vector{2.0, 20.0}));
    const Vector s = htd::stats::column_stddevs(data);
    EXPECT_NEAR(s[0], std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(s[1], std::sqrt(200.0), 1e-12);
}

TEST(Descriptive, CovarianceMatrixKnown) {
    const Matrix data{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
    const Matrix cov = htd::stats::covariance_matrix(data);
    EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
    EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
    EXPECT_TRUE(cov.is_symmetric());
}

TEST(Descriptive, CenteredHasZeroColumnMeans) {
    htd::rng::Rng rng(1);
    Matrix data(50, 3);
    for (std::size_t r = 0; r < 50; ++r)
        for (std::size_t c = 0; c < 3; ++c) data(r, c) = rng.normal(5.0, 2.0);
    const Matrix centered = htd::stats::centered(data);
    const Vector m = htd::stats::column_means(centered);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(m[c], 0.0, 1e-12);
}

TEST(Descriptive, MahalanobisIdentityCovIsEuclidean) {
    const Vector x{3.0, 4.0};
    const Vector mean{0.0, 0.0};
    EXPECT_NEAR(htd::stats::mahalanobis(x, mean, Matrix::identity(2)), 5.0, 1e-9);
}

TEST(Descriptive, MahalanobisScalesWithVariance) {
    const Vector x{2.0};
    const Vector mean{0.0};
    const Matrix cov{{4.0}};
    EXPECT_NEAR(htd::stats::mahalanobis(x, mean, cov), 1.0, 1e-9);
}

// --- Histogram -------------------------------------------------------------------

TEST(HistogramTest, CountsAndEdges) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(10.0);   // right edge -> last bin
    h.add(-1.0);   // underflow
    h.add(11.0);   // overflow
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, DensityNormalizes) {
    Histogram h(0.0, 1.0, 4);
    const std::vector<double> xs{0.1, 0.3, 0.6, 0.9};
    h.add_all(xs);
    double integral = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b) integral += h.density(b) * 0.25;
    EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, BinCenter) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
    EXPECT_THROW((void)h.bin_center(5), std::out_of_range);
}

// --- RunningStats ---------------------------------------------------------------

TEST(RunningStatsTest, MatchesBatchStatistics) {
    htd::rng::Rng rng(2);
    RunningStats rs;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 1.5);
        rs.add(x);
        xs.push_back(x);
    }
    EXPECT_NEAR(rs.mean(), htd::stats::mean(xs), 1e-10);
    EXPECT_NEAR(rs.variance(), htd::stats::variance(xs), 1e-9);
    EXPECT_EQ(rs.count(), 1000u);
}

TEST(RunningStatsTest, MinMaxTracked) {
    RunningStats rs;
    rs.add(3.0);
    rs.add(-1.0);
    rs.add(2.0);
    EXPECT_EQ(rs.min(), -1.0);
    EXPECT_EQ(rs.max(), 3.0);
}

TEST(RunningStatsTest, VarianceNeedsTwoSamples) {
    RunningStats rs;
    rs.add(1.0);
    EXPECT_THROW((void)rs.variance(), std::logic_error);
}

}  // namespace
