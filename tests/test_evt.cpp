/// Tests for the EVT tail-modeling module: GPD distribution functions,
/// probability-weighted-moments fitting, peaks-over-threshold models and
/// the multivariate tail enhancer.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/evt.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::rng::Rng;
using htd::stats::EvtTailEnhancer;
using htd::stats::GeneralizedPareto;
using htd::stats::PotTailModel;

// --- GPD -----------------------------------------------------------------------

TEST(Gpd, RejectsBadParameters) {
    EXPECT_THROW(GeneralizedPareto(0.1, 0.0), std::invalid_argument);
    EXPECT_THROW(GeneralizedPareto(1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(GeneralizedPareto(-1.2, 1.0), std::invalid_argument);
}

TEST(Gpd, ExponentialSpecialCase) {
    // xi = 0 degenerates to Exp(1/scale).
    const GeneralizedPareto gpd(0.0, 2.0);
    EXPECT_NEAR(gpd.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
    EXPECT_NEAR(gpd.pdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(gpd.quantile(1.0 - std::exp(-1.0)), 2.0, 1e-9);
}

TEST(Gpd, QuantileInvertsCdf) {
    const GeneralizedPareto gpd(0.2, 1.5);
    for (const double p : {0.1, 0.5, 0.9, 0.99}) {
        EXPECT_NEAR(gpd.cdf(gpd.quantile(p)), p, 1e-9);
    }
    EXPECT_THROW((void)gpd.quantile(1.0), std::invalid_argument);
}

TEST(Gpd, NegativeShapeHasFiniteEndpoint) {
    // xi < 0: support is [0, -scale/shape].
    const GeneralizedPareto gpd(-0.4, 1.0);
    const double endpoint = -1.0 / -0.4;
    EXPECT_NEAR(gpd.cdf(endpoint + 1.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(gpd.pdf(endpoint + 1.0), 0.0);
    EXPECT_LE(gpd.quantile(0.999999), endpoint + 1e-6);
}

TEST(Gpd, PositiveShapeHasHeavyTail) {
    const GeneralizedPareto heavy(0.4, 1.0);
    const GeneralizedPareto light(0.0, 1.0);
    EXPECT_GT(heavy.quantile(0.999), light.quantile(0.999));
}

TEST(Gpd, SampleMomentsMatchTheory) {
    // Mean of GPD = scale / (1 - shape) for shape < 1.
    const GeneralizedPareto gpd(0.2, 1.0);
    Rng rng(1);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += gpd.sample(rng);
    EXPECT_NEAR(sum / n, 1.0 / 0.8, 0.02);
}

TEST(Gpd, PwmFitRecoversExponential) {
    Rng rng(2);
    std::vector<double> excesses(5000);
    for (double& y : excesses) y = rng.exponential(1.0 / 2.0);  // mean 2
    const GeneralizedPareto fit = GeneralizedPareto::fit_pwm(excesses);
    EXPECT_NEAR(fit.shape(), 0.0, 0.05);
    EXPECT_NEAR(fit.scale(), 2.0, 0.1);
}

TEST(Gpd, PwmFitRecoversHeavyTail) {
    const GeneralizedPareto truth(0.3, 1.0);
    Rng rng(3);
    std::vector<double> excesses(20000);
    for (double& y : excesses) y = truth.sample(rng);
    const GeneralizedPareto fit = GeneralizedPareto::fit_pwm(excesses);
    EXPECT_NEAR(fit.shape(), 0.3, 0.05);
    EXPECT_NEAR(fit.scale(), 1.0, 0.07);
}

TEST(Gpd, PwmFitRejectsDegenerate) {
    EXPECT_THROW((void)GeneralizedPareto::fit_pwm(std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)GeneralizedPareto::fit_pwm(std::vector<double>{-1.0, 1.0, 2.0}),
                 std::invalid_argument);
}

// --- POT -----------------------------------------------------------------------------

std::vector<double> normal_sample(Rng& rng, std::size_t n) {
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.normal();
    return xs;
}

TEST(Pot, RejectsBadConfig) {
    Rng rng(4);
    const auto xs = normal_sample(rng, 100);
    EXPECT_THROW(PotTailModel(xs, 0.0, true), std::invalid_argument);
    EXPECT_THROW(PotTailModel(xs, 0.6, true), std::invalid_argument);
    EXPECT_THROW(PotTailModel(xs, 0.01, true), std::invalid_argument);  // < 3 points
}

TEST(Pot, ThresholdSitsAtConfiguredQuantile) {
    Rng rng(5);
    const auto xs = normal_sample(rng, 2000);
    const PotTailModel upper(xs, 0.1, true);
    EXPECT_NEAR(upper.threshold(), htd::stats::quantile(xs, 0.9), 0.05);
    const PotTailModel lower(xs, 0.1, false);
    EXPECT_NEAR(lower.threshold(), htd::stats::quantile(xs, 0.1), 0.05);
}

TEST(Pot, QuantileMatchesEmpiricalInBody) {
    Rng rng(6);
    const auto xs = normal_sample(rng, 2000);
    const PotTailModel model(xs, 0.1, true);
    EXPECT_NEAR(model.quantile(0.5), htd::stats::quantile(xs, 0.5), 1e-9);
    EXPECT_THROW((void)model.quantile(0.0), std::invalid_argument);
}

TEST(Pot, TailQuantilesExtendBeyondSample) {
    // A GPD tail extrapolates beyond the largest observation for quantiles
    // deeper than 1/n — the whole point of EVT enhancement.
    Rng rng(7);
    const auto xs = normal_sample(rng, 500);
    const PotTailModel model(xs, 0.1, true);
    const double max_obs = htd::stats::quantile(xs, 1.0);
    EXPECT_GT(model.quantile(0.9999), max_obs * 0.9);
}

TEST(Pot, TailSamplesRespectDirection) {
    Rng rng(8);
    const auto xs = normal_sample(rng, 1000);
    const PotTailModel upper(xs, 0.1, true);
    const PotTailModel lower(xs, 0.1, false);
    for (int i = 0; i < 200; ++i) {
        EXPECT_GE(upper.sample_tail(rng), upper.threshold());
        EXPECT_LE(lower.sample_tail(rng), lower.threshold());
    }
}

TEST(Pot, NormalTailShapeNearZero) {
    // The normal distribution is in the Gumbel domain: fitted xi ~ <= 0.
    Rng rng(9);
    const auto xs = normal_sample(rng, 20000);
    const PotTailModel model(xs, 0.05, true);
    EXPECT_LT(model.gpd().shape(), 0.2);
}

// --- EvtTailEnhancer ---------------------------------------------------------------

Matrix correlated_cloud(Rng& rng, std::size_t n) {
    Matrix data(n, 3);
    for (std::size_t r = 0; r < n; ++r) {
        const double t = rng.normal();
        data(r, 0) = t + 0.1 * rng.normal();
        data(r, 1) = -t + 0.1 * rng.normal();
        data(r, 2) = 0.5 * rng.normal();
    }
    return data;
}

TEST(EvtEnhancer, RejectsDegenerate) {
    Rng rng(10);
    EXPECT_THROW(EvtTailEnhancer(Matrix(5, 2, 1.0)), std::invalid_argument);
    const Matrix data = correlated_cloud(rng, 100);
    EXPECT_THROW(EvtTailEnhancer(data, 0.0), std::invalid_argument);
}

TEST(EvtEnhancer, PreservesMeanAndCovarianceStructure) {
    Rng rng(11);
    const Matrix data = correlated_cloud(rng, 1000);
    const EvtTailEnhancer evt(data, 0.1);
    const Matrix synth = evt.sample_n(rng, 20000);

    const Vector m_data = htd::stats::column_means(data);
    const Vector m_synth = htd::stats::column_means(synth);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(m_synth[c], m_data[c], 0.08);

    // The anti-correlation between the first two axes survives.
    const Vector a = synth.col(0);
    const Vector b = synth.col(1);
    std::vector<double> va(a.begin(), a.end());
    std::vector<double> vb(b.begin(), b.end());
    EXPECT_LT(htd::stats::pearson_correlation(va, vb), -0.9);
}

TEST(EvtEnhancer, ExtendsTailsBeyondData) {
    Rng rng(12);
    const Matrix data = correlated_cloud(rng, 300);
    const EvtTailEnhancer evt(data, 0.15);
    const Matrix synth = evt.sample_n(rng, 50000);
    double data_max = data(0, 0), synth_max = synth(0, 0);
    for (std::size_t r = 0; r < data.rows(); ++r) data_max = std::max(data_max, data(r, 0));
    for (std::size_t r = 0; r < synth.rows(); ++r) synth_max = std::max(synth_max, synth(r, 0));
    EXPECT_GT(synth_max, data_max * 0.95);
}

TEST(EvtEnhancer, AccessorsValidateAxis) {
    Rng rng(13);
    const Matrix data = correlated_cloud(rng, 200);
    const EvtTailEnhancer evt(data, 0.15);
    EXPECT_EQ(evt.dim(), 3u);
    EXPECT_NO_THROW((void)evt.upper_tail(2));
    EXPECT_THROW((void)evt.upper_tail(3), std::out_of_range);
    EXPECT_THROW((void)evt.lower_tail(3), std::out_of_range);
}

/// Property sweep: the enhancer keeps per-axis spread within a reasonable
/// band of the source for several tail fractions.
class EvtTailFraction : public ::testing::TestWithParam<double> {};

TEST_P(EvtTailFraction, SpreadPreserved) {
    Rng rng(14);
    const Matrix data = correlated_cloud(rng, 500);
    const EvtTailEnhancer evt(data, GetParam());
    const Matrix synth = evt.sample_n(rng, 10000);
    const Vector s_data = htd::stats::column_stddevs(data);
    const Vector s_synth = htd::stats::column_stddevs(synth);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(s_synth[c], s_data[c], 0.25 * s_data[c]);
    }
}

INSTANTIATE_TEST_SUITE_P(Fractions, EvtTailFraction,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3));

}  // namespace
