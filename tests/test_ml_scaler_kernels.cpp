/// Tests for the StandardScaler and the kernel-function utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"
#include "ml/kernel_functions.hpp"
#include "ml/scaler.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::gram_matrix;
using htd::ml::KernelFn;
using htd::ml::StandardScaler;

TEST(Scaler, TransformsToZeroMeanUnitVariance) {
    htd::rng::Rng rng(1);
    Matrix data(200, 3);
    for (std::size_t r = 0; r < 200; ++r) {
        data(r, 0) = rng.normal(10.0, 3.0);
        data(r, 1) = rng.normal(-5.0, 0.1);
        data(r, 2) = rng.normal(0.0, 42.0);
    }
    StandardScaler scaler;
    scaler.fit(data);
    const Matrix z = scaler.transform(data);
    const Vector m = htd::stats::column_means(z);
    const Vector s = htd::stats::column_stddevs(z);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(m[c], 0.0, 1e-10);
        EXPECT_NEAR(s[c], 1.0, 1e-10);
    }
}

TEST(Scaler, InverseTransformRoundTrips) {
    htd::rng::Rng rng(2);
    Matrix data(50, 2);
    for (std::size_t r = 0; r < 50; ++r)
        for (std::size_t c = 0; c < 2; ++c) data(r, c) = rng.normal(3.0, 2.0);
    StandardScaler scaler;
    scaler.fit(data);
    const Vector x = data.row(7);
    const Vector back = scaler.inverse_transform(scaler.transform(x));
    EXPECT_NEAR(back[0], x[0], 1e-12);
    EXPECT_NEAR(back[1], x[1], 1e-12);
}

TEST(Scaler, ConstantColumnPassesThrough) {
    Matrix data{{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
    StandardScaler scaler;
    scaler.fit(data);
    const Vector z = scaler.transform(Vector{5.0, 2.0});
    EXPECT_NEAR(z[0], 0.0, 1e-12);
}

TEST(Scaler, ThrowsWhenNotFitted) {
    const StandardScaler scaler;
    EXPECT_THROW((void)scaler.transform(Vector{1.0}), std::logic_error);
}

TEST(Scaler, ThrowsOnDimensionMismatch) {
    StandardScaler scaler;
    scaler.fit(Matrix{{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_THROW((void)scaler.transform(Vector{1.0}), std::invalid_argument);
}

TEST(Scaler, RejectsEmptyFit) {
    StandardScaler scaler;
    EXPECT_THROW(scaler.fit(Matrix()), std::invalid_argument);
}

// --- kernel functions -------------------------------------------------------------

TEST(Kernels, RbfSelfSimilarityIsOne) {
    const KernelFn k = htd::ml::rbf_kernel(0.7);
    const double x[] = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(k(x, x), 1.0);
}

TEST(Kernels, RbfDecaysWithDistance) {
    const KernelFn k = htd::ml::rbf_kernel(1.0);
    const double a[] = {0.0};
    const double b[] = {1.0};
    const double c[] = {2.0};
    EXPECT_GT(k(a, b), k(a, c));
    EXPECT_NEAR(k(a, b), std::exp(-1.0), 1e-12);
}

TEST(Kernels, RbfRejectsBadGamma) {
    EXPECT_THROW((void)htd::ml::rbf_kernel(0.0), std::invalid_argument);
    EXPECT_THROW((void)htd::ml::rbf_kernel(-1.0), std::invalid_argument);
}

TEST(Kernels, LinearIsDotProduct) {
    const KernelFn k = htd::ml::linear_kernel();
    const double a[] = {1.0, 2.0};
    const double b[] = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(k(a, b), 11.0);
}

TEST(Kernels, PolynomialKnownValue) {
    const KernelFn k = htd::ml::polynomial_kernel(2, 1.0, 1.0);
    const double a[] = {1.0};
    const double b[] = {2.0};
    EXPECT_DOUBLE_EQ(k(a, b), 9.0);  // (2 + 1)^2
    EXPECT_THROW((void)htd::ml::polynomial_kernel(0), std::invalid_argument);
}

TEST(Kernels, DimMismatchThrows) {
    const KernelFn k = htd::ml::rbf_kernel(1.0);
    const double a[] = {1.0};
    const double b[] = {1.0, 2.0};
    EXPECT_THROW((void)k(a, b), std::invalid_argument);
}

TEST(Kernels, MedianHeuristicPositive) {
    htd::rng::Rng rng(3);
    Matrix data(100, 4);
    for (std::size_t r = 0; r < 100; ++r)
        for (std::size_t c = 0; c < 4; ++c) data(r, c) = rng.normal();
    const double gamma = htd::ml::median_heuristic_gamma(data);
    EXPECT_GT(gamma, 0.0);
    // For standard normal data in 4-D, median pairwise distance ~ sqrt(2*4)
    // => gamma ~ 1/(2*8) ~ 0.06; sanity band:
    EXPECT_GT(gamma, 0.01);
    EXPECT_LT(gamma, 0.5);
}

TEST(Kernels, MedianHeuristicNeedsTwoRows) {
    EXPECT_THROW((void)htd::ml::median_heuristic_gamma(Matrix{{1.0}}),
                 std::invalid_argument);
}

TEST(Kernels, GramMatrixSymmetricPsdDiagonalOnes) {
    htd::rng::Rng rng(4);
    Matrix data(20, 3);
    for (std::size_t r = 0; r < 20; ++r)
        for (std::size_t c = 0; c < 3; ++c) data(r, c) = rng.normal();
    const Matrix g = gram_matrix(htd::ml::rbf_kernel(0.5), data);
    EXPECT_TRUE(g.is_symmetric());
    for (std::size_t i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(g(i, i), 1.0);
    // PSD check via eigenvalues.
    const auto eig = htd::linalg::symmetric_eigen(g);
    EXPECT_GE(eig.values[19], -1e-9);
}

TEST(Kernels, CrossGramShape) {
    Matrix a(3, 2, 1.0);
    Matrix b(5, 2, 2.0);
    const Matrix g = gram_matrix(htd::ml::linear_kernel(), a, b);
    EXPECT_EQ(g.rows(), 3u);
    EXPECT_EQ(g.cols(), 5u);
    EXPECT_DOUBLE_EQ(g(0, 0), 4.0);
}

}  // namespace
