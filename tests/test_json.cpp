/// Tests for the JSON writer and the experiment report serializer.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "pipeline/report.hpp"
#include "io/json.hpp"

namespace {

using htd::io::Json;
using htd::io::json_escape;
using htd::linalg::Matrix;
using htd::linalg::Vector;

TEST(JsonValue, ScalarsSerialize) {
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(3).dump(), "3");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(std::size_t{42}).dump(), "42");
}

TEST(JsonValue, DoubleRoundTripPrecision) {
    // std::to_chars emits the shortest literal that parses back to the
    // same double.
    const double value = 0.1234567890123456;
    const std::string s = Json(value).dump();
    EXPECT_EQ(std::stod(s), value);
}

TEST(JsonValue, DoubleRoundTripIsValueExactForHardCases) {
    // write -> parse -> write must be value-exact (and therefore
    // byte-stable on the second write) for the doubles that defeat
    // fixed-precision printf formatting: denormals, the largest finite
    // magnitudes, negative zero, and shortest-representation cases. The
    // htd.boundary.v1 artifact's bitwise score parity relies on this.
    const double cases[] = {
        5e-324,                       // smallest positive denormal
        4.9406564584124654e-318,     // denormal with many digits
        2.2250738585072014e-308,     // smallest positive normal
        1.7976931348623157e308,      // largest finite
        -1.7976931348623157e308,     // most negative finite
        -0.0,                        // negative zero
        0.1,                         // classic shortest-form case
        1.0 / 3.0,
        123456789012345680.0,        // > 2^53, not exactly representable
        -6.02214076e23,
    };
    for (const double value : cases) {
        const std::string first = Json(value).dump();
        const Json parsed = Json::parse(first);
        ASSERT_TRUE(parsed.is_number()) << first;
        const double reparsed = parsed.number();
        // Bit-level comparison: catches -0.0 vs 0.0, which == cannot.
        EXPECT_EQ(std::signbit(reparsed), std::signbit(value)) << first;
        EXPECT_EQ(reparsed, value) << first;
        EXPECT_EQ(Json(reparsed).dump(), first);
    }
}

TEST(JsonValue, NonFiniteBecomesNull) {
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
    EXPECT_EQ(Json(1.0 / 0.0).dump(), "null");
}

TEST(JsonValue, EscapingPerRfc) {
    EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json_escape("back\\slash"), "\"back\\\\slash\"");
    EXPECT_EQ(json_escape("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonValue, ArraysAndObjects) {
    Json arr = Json::array();
    arr.push_back(1).push_back("two").push_back(Json());
    EXPECT_EQ(arr.dump(), "[1,\"two\",null]");
    EXPECT_EQ(arr.size(), 3u);

    Json obj = Json::object();
    obj.set("b", 2).set("a", 1);
    // Keys are sorted for deterministic output.
    EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":2}");
    EXPECT_TRUE(obj.is_object());
    EXPECT_TRUE(arr.is_array());
}

TEST(JsonValue, TypeErrorsThrow) {
    Json scalar(1.0);
    EXPECT_THROW(scalar.push_back(1), std::logic_error);
    EXPECT_THROW(scalar.set("k", 1), std::logic_error);
    EXPECT_THROW((void)scalar.size(), std::logic_error);
    Json arr = Json::array();
    EXPECT_THROW(arr.set("k", 1), std::logic_error);
}

TEST(JsonValue, PrettyPrintIndents) {
    Json obj = Json::object();
    obj.set("x", 1);
    const std::string pretty = obj.dump(2);
    EXPECT_NE(pretty.find("{\n  \"x\": 1\n}"), std::string::npos);
}

TEST(JsonValue, FromVectorAndMatrix) {
    EXPECT_EQ(Json::from(Vector{1.0, 2.0}).dump(), "[1,2]");
    EXPECT_EQ(Json::from(Matrix{{1.0, 2.0}, {3.0, 4.0}}).dump(), "[[1,2],[3,4]]");
}

TEST(JsonValue, DumpToFileRoundTrips) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "htd_json_test.json").string();
    Json obj = Json::object();
    obj.set("answer", 42);
    obj.dump_to_file(path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"answer\": 42"), std::string::npos);
    std::filesystem::remove(path);
    EXPECT_THROW(obj.dump_to_file("/nonexistent/dir/file.json"), std::runtime_error);
}

TEST(JsonParse, ScalarsAndContainers) {
    EXPECT_TRUE(Json::parse("null").is_null());
    EXPECT_EQ(Json::parse("true").boolean(), true);
    EXPECT_EQ(Json::parse(" false ").boolean(), false);
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").number(), -1250.0);
    EXPECT_EQ(Json::parse("\"hi\"").str(), "hi");

    const Json arr = Json::parse("[1, \"two\", null]");
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_DOUBLE_EQ(arr.at(0).number(), 1.0);
    EXPECT_EQ(arr.at(1).str(), "two");
    EXPECT_TRUE(arr.at(2).is_null());

    const Json obj = Json::parse("{\"a\": {\"b\": [true]}}");
    EXPECT_TRUE(obj.contains("a"));
    EXPECT_FALSE(obj.contains("b"));
    EXPECT_EQ(obj.at("a").at("b").at(0).boolean(), true);
}

TEST(JsonParse, EscapesAndUnicode) {
    EXPECT_EQ(Json::parse("\"a\\\"b\\\\c\\n\"").str(), "a\"b\\c\n");
    EXPECT_EQ(Json::parse("\"\\u0041\"").str(), "A");
    // Surrogate pair: U+1D11E (musical G clef) -> 4-byte UTF-8.
    EXPECT_EQ(Json::parse("\"\\uD834\\uDD1E\"").str(), "\xF0\x9D\x84\x9E");
}

TEST(JsonParse, MalformedInputThrows) {
    EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
    EXPECT_THROW((void)Json::parse("{"), std::invalid_argument);
    EXPECT_THROW((void)Json::parse("[1,]"), std::invalid_argument);
    EXPECT_THROW((void)Json::parse("nul"), std::invalid_argument);
    EXPECT_THROW((void)Json::parse("\"unterminated"), std::invalid_argument);
    EXPECT_THROW((void)Json::parse("1 2"), std::invalid_argument);  // trailing
    EXPECT_THROW((void)Json::parse("{\"a\" 1}"), std::invalid_argument);
}

TEST(JsonParse, DumpParseRoundTrip) {
    Json doc = Json::object();
    doc.set("name", "round trip");
    doc.set("pi", 3.141592653589793);
    doc.set("flags", Json::array());
    Json nested = Json::array();
    nested.push_back(1).push_back(false).push_back("x\ty");
    doc.set("nested", std::move(nested));

    for (const int indent : {0, 2}) {
        const Json parsed = Json::parse(doc.dump(indent));
        EXPECT_EQ(parsed.dump(), doc.dump());
        EXPECT_DOUBLE_EQ(parsed.at("pi").number(), 3.141592653589793);
        EXPECT_EQ(parsed.at("nested").at(2).str(), "x\ty");
    }
}

TEST(Report, ContainsTable1AndDiagnostics) {
    htd::core::ExperimentConfig config;
    config.n_chips = 8;
    config.pipeline.synthetic_samples = 5000;
    const htd::core::ExperimentResult result = htd::core::run_experiment(config);
    const Json doc = htd::core::experiment_report(config, result);
    const std::string text = doc.dump();
    EXPECT_NE(text.find("\"table1\""), std::string::npos);
    EXPECT_NE(text.find("\"B5\""), std::string::npos);
    EXPECT_NE(text.find("\"golden_chip_baseline\""), std::string::npos);
    EXPECT_NE(text.find("\"mars_mean_r2\""), std::string::npos);
    // Without measurements the per-device dump is absent.
    EXPECT_EQ(text.find("\"devices\""), std::string::npos);

    const Json with_devices =
        htd::core::experiment_report(config, result, /*include_measurements=*/true);
    EXPECT_NE(with_devices.dump().find("\"devices\""), std::string::npos);
}

}  // namespace
