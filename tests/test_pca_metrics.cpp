/// Tests for PCA (Fig. 4 projections) and the detection metrics (Eqs. 1-2).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ml/metrics.hpp"
#include "ml/pca.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::DetectionMetrics;
using htd::ml::DeviceLabel;
using htd::ml::evaluate_detection;
using htd::ml::Pca;
using htd::rng::Rng;

TEST(PcaTest, RejectsDegenerate) {
    Pca pca;
    EXPECT_THROW(pca.fit(Matrix(1, 3)), std::invalid_argument);
    EXPECT_THROW(pca.fit(Matrix(10, 3), 4), std::invalid_argument);
    const Pca unfitted;
    EXPECT_THROW((void)unfitted.transform(Vector{1.0}), std::logic_error);
}

TEST(PcaTest, FirstComponentAlignsWithDominantDirection) {
    Rng rng(1);
    Matrix data(500, 2);
    for (std::size_t r = 0; r < 500; ++r) {
        const double t = rng.normal(0.0, 3.0);
        data(r, 0) = t + rng.normal(0.0, 0.1);
        data(r, 1) = 2.0 * t + rng.normal(0.0, 0.1);
    }
    Pca pca;
    pca.fit(data, 2);
    // First component ~ (1, 2)/sqrt(5)
    const double c0 = pca.components()(0, 0);
    const double c1 = pca.components()(1, 0);
    EXPECT_NEAR(std::abs(c1 / c0), 2.0, 0.05);
    // Explained variance strongly dominated by the first component.
    const Vector ratio = pca.explained_variance_ratio();
    EXPECT_GT(ratio[0], 0.99);
}

TEST(PcaTest, TransformCentersScores) {
    Rng rng(2);
    Matrix data(300, 3);
    for (std::size_t r = 0; r < 300; ++r)
        for (std::size_t c = 0; c < 3; ++c) data(r, c) = rng.normal(5.0, 1.0);
    Pca pca;
    pca.fit(data, 2);
    const Matrix scores = pca.transform(data);
    const Vector m = htd::stats::column_means(scores);
    EXPECT_NEAR(m[0], 0.0, 1e-9);
    EXPECT_NEAR(m[1], 0.0, 1e-9);
}

TEST(PcaTest, FullRankRoundTrip) {
    Rng rng(3);
    Matrix data(100, 3);
    for (std::size_t r = 0; r < 100; ++r)
        for (std::size_t c = 0; c < 3; ++c) data(r, c) = rng.normal();
    Pca pca;
    pca.fit(data);  // keep all components
    const Vector x = data.row(42);
    const Vector back = pca.inverse_transform(pca.transform(x));
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(back[c], x[c], 1e-9);
}

TEST(PcaTest, EigenvaluesDescending) {
    Rng rng(4);
    Matrix data(200, 5);
    for (std::size_t r = 0; r < 200; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            data(r, c) = rng.normal(0.0, static_cast<double>(c + 1));
    Pca pca;
    pca.fit(data);
    const Vector ev = pca.explained_variance();
    for (std::size_t k = 1; k < ev.size(); ++k) EXPECT_GE(ev[k - 1], ev[k]);
}

TEST(PcaTest, VarianceRatioSumsToOneWhenAllKept) {
    Rng rng(5);
    Matrix data(150, 4);
    for (std::size_t r = 0; r < 150; ++r)
        for (std::size_t c = 0; c < 4; ++c) data(r, c) = rng.normal();
    Pca pca;
    pca.fit(data);
    EXPECT_NEAR(pca.explained_variance_ratio().sum(), 1.0, 1e-9);
}

TEST(PcaTest, TransformDimMismatchThrows) {
    Pca pca;
    pca.fit(Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 7.0}});
    EXPECT_THROW((void)pca.transform(Vector{1.0}), std::invalid_argument);
    EXPECT_THROW((void)pca.inverse_transform(Vector{1.0, 2.0, 3.0}),
                 std::invalid_argument);
}

// --- detection metrics ----------------------------------------------------------

TEST(Metrics, PaperConventionFpOverInfested) {
    // FP counts infested devices predicted free (Eq. 1);
    // FN counts free devices predicted infested (Eq. 2).
    const std::vector<bool> predicted_free{true, false, true, false};
    const std::vector<DeviceLabel> labels{
        DeviceLabel::kTrojanInfested,  // predicted free -> FP
        DeviceLabel::kTrojanInfested,  // predicted infested -> TN
        DeviceLabel::kTrojanFree,      // predicted free -> TP
        DeviceLabel::kTrojanFree,      // predicted infested -> FN
    };
    const DetectionMetrics m = evaluate_detection(predicted_free, labels);
    EXPECT_EQ(m.false_positives, 1u);
    EXPECT_EQ(m.false_negatives, 1u);
    EXPECT_EQ(m.true_positives, 1u);
    EXPECT_EQ(m.true_negatives, 1u);
    EXPECT_EQ(m.trojan_free_total, 2u);
    EXPECT_EQ(m.trojan_infested_total, 2u);
    EXPECT_DOUBLE_EQ(m.false_positive_rate(), 0.5);
    EXPECT_DOUBLE_EQ(m.false_negative_rate(), 0.5);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
}

TEST(Metrics, PerfectDetector) {
    const std::vector<bool> predicted{true, false};
    const std::vector<DeviceLabel> labels{DeviceLabel::kTrojanFree,
                                          DeviceLabel::kTrojanInfested};
    const DetectionMetrics m = evaluate_detection(predicted, labels);
    EXPECT_EQ(m.false_positives, 0u);
    EXPECT_EQ(m.false_negatives, 0u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

TEST(Metrics, SizeMismatchThrows) {
    EXPECT_THROW((void)evaluate_detection({true}, std::vector<DeviceLabel>{}),
                 std::invalid_argument);
}

TEST(Metrics, EmptyBatchSafeRates) {
    const DetectionMetrics m = evaluate_detection({}, std::vector<DeviceLabel>{});
    EXPECT_DOUBLE_EQ(m.false_positive_rate(), 0.0);
    EXPECT_DOUBLE_EQ(m.false_negative_rate(), 0.0);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

TEST(Metrics, StrRendersTable1Style) {
    DetectionMetrics m;
    m.false_positives = 3;
    m.trojan_infested_total = 80;
    m.false_negatives = 5;
    m.trojan_free_total = 40;
    EXPECT_EQ(m.str(), "FP 3/80  FN 5/40");
}

}  // namespace
