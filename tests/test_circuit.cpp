/// Tests for the device and delay models behind the PCM structures.

#include <gtest/gtest.h>

#include <stdexcept>

#include "circuit/delay.hpp"
#include "circuit/mosfet.hpp"
#include "process/process_point.hpp"

namespace {

using htd::circuit::Inverter;
using htd::circuit::Mosfet;
using htd::circuit::MosfetGeometry;
using htd::circuit::MosType;
using htd::circuit::PcmPath;
using htd::circuit::RingOscillatorPcm;
using htd::circuit::WireSegment;
using htd::process::nominal_350nm;
using htd::process::Param;
using htd::process::ProcessPoint;

TEST(CoxModel, TextbookValueAt350nm) {
    // ~4.5 fF/um^2 for 7.6 nm oxide.
    EXPECT_NEAR(htd::process::cox_ff_per_um2(7.6), 4.54, 0.05);
    EXPECT_THROW((void)htd::process::cox_ff_per_um2(0.0), std::invalid_argument);
}

TEST(MosfetModel, RejectsBadConstruction) {
    EXPECT_THROW(Mosfet(MosType::kNmos, MosfetGeometry{0.0, 0.35}),
                 std::invalid_argument);
    EXPECT_THROW(Mosfet(MosType::kNmos, MosfetGeometry{1.0, 0.35}, 0.0),
                 std::invalid_argument);
}

TEST(MosfetModel, OffBelowThreshold) {
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    const ProcessPoint pp = nominal_350nm();
    EXPECT_EQ(nmos.saturation_current_ma(pp, 0.3), 0.0);
    EXPECT_GT(nmos.saturation_current_ma(pp, 1.0), 0.0);
}

TEST(MosfetModel, CurrentIncreasesWithGateDrive) {
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    const ProcessPoint pp = nominal_350nm();
    EXPECT_LT(nmos.saturation_current_ma(pp, 1.5),
              nmos.saturation_current_ma(pp, 2.5));
}

TEST(MosfetModel, CurrentScalesWithWidth) {
    const ProcessPoint pp = nominal_350nm();
    const Mosfet narrow(MosType::kNmos, MosfetGeometry{5.0, 0.35});
    const Mosfet wide(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    EXPECT_NEAR(wide.saturation_current_ma(pp, 2.0),
                2.0 * narrow.saturation_current_ma(pp, 2.0), 1e-9);
}

TEST(MosfetModel, CurrentDropsWithHigherVth) {
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    ProcessPoint slow = nominal_350nm();
    slow.set(Param::kVthN, 0.70);
    EXPECT_LT(nmos.saturation_current_ma(slow, 2.0),
              nmos.saturation_current_ma(nominal_350nm(), 2.0));
}

TEST(MosfetModel, CurrentTracksMobility) {
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    ProcessPoint fast = nominal_350nm();
    fast.set(Param::kMuN, 500.0);
    EXPECT_GT(nmos.saturation_current_ma(fast, 2.0),
              nmos.saturation_current_ma(nominal_350nm(), 2.0));
}

TEST(MosfetModel, RealisticCurrentMagnitude) {
    // A 10/0.35 NMOS at full 3.3 V drive should deliver a few mA.
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    const double id = nmos.saturation_current_ma(nominal_350nm(), 3.3);
    EXPECT_GT(id, 0.5);
    EXPECT_LT(id, 20.0);
}

TEST(MosfetModel, TransconductancePositiveAndIncreasing) {
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{10.0, 0.35});
    const ProcessPoint pp = nominal_350nm();
    const double gm1 = nmos.transconductance_ma_per_v(pp, 1.2);
    const double gm2 = nmos.transconductance_ma_per_v(pp, 2.4);
    EXPECT_GT(gm1, 0.0);
    EXPECT_GT(gm2, gm1);
}

TEST(MosfetModel, OnResistanceFiniteAndPositive) {
    const Mosfet nmos(MosType::kNmos, MosfetGeometry{4.0, 0.35});
    EXPECT_GT(nmos.on_resistance_kohm(nominal_350nm(), 3.3), 0.0);
    // Device off at vdd below threshold.
    ProcessPoint high_vth = nominal_350nm();
    high_vth.set(Param::kVthN, 4.0);
    EXPECT_THROW((void)nmos.on_resistance_kohm(high_vth, 3.3), std::domain_error);
}

TEST(MosfetModel, GateCapScalesWithArea) {
    const ProcessPoint pp = nominal_350nm();
    const Mosfet small(MosType::kNmos, MosfetGeometry{2.0, 0.35});
    const Mosfet large(MosType::kNmos, MosfetGeometry{8.0, 0.35});
    EXPECT_NEAR(large.gate_capacitance_ff(pp), 4.0 * small.gate_capacitance_ff(pp),
                1e-9);
    // Realistic magnitude: a 2/0.35 gate is around 3 fF.
    EXPECT_GT(small.gate_capacitance_ff(pp), 1.0);
    EXPECT_LT(small.gate_capacitance_ff(pp), 10.0);
}

// --- Inverter / wire -----------------------------------------------------------

TEST(InverterModel, DelayIncreasesWithLoad) {
    const Inverter inv(4.0);
    const ProcessPoint pp = nominal_350nm();
    EXPECT_LT(inv.propagation_delay_ps(pp, 10.0, 3.3),
              inv.propagation_delay_ps(pp, 50.0, 3.3));
    EXPECT_THROW((void)inv.propagation_delay_ps(pp, -1.0, 3.3), std::invalid_argument);
}

TEST(InverterModel, SlowerAtLowerSupply) {
    const Inverter inv(4.0);
    const ProcessPoint pp = nominal_350nm();
    EXPECT_GT(inv.propagation_delay_ps(pp, 20.0, 2.0),
              inv.propagation_delay_ps(pp, 20.0, 3.3));
}

TEST(WireModel, ScalesWithProcess) {
    const WireSegment wire{100.0, 0.08, 0.08};
    ProcessPoint pp = nominal_350nm();
    const double r_nom = wire.resistance_kohm(pp);
    pp.set(Param::kRsheet, 150.0);
    EXPECT_NEAR(wire.resistance_kohm(pp), 2.0 * r_nom, 1e-12);
    pp = nominal_350nm();
    const double c_nom = wire.capacitance_ff(pp);
    pp.set(Param::kCjScale, 2.0);
    EXPECT_NEAR(wire.capacitance_ff(pp), 2.0 * c_nom, 1e-12);
}

TEST(ElmoreLadder, MatchesHandComputation) {
    // Two-node ladder: R1=1k, C1=10f; R2=2k, C2=5f.
    // Elmore = R1*C1 + (R1+R2)*C2 = 10 + 15 = 25 ps.
    EXPECT_NEAR(htd::circuit::elmore_ladder_delay_ps({1.0, 2.0}, {10.0, 5.0}), 25.0,
                1e-12);
    EXPECT_THROW((void)htd::circuit::elmore_ladder_delay_ps({1.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

// --- PCM structures ---------------------------------------------------------------

TEST(PcmPathModel, RejectsBadOptions) {
    PcmPath::Options opts;
    opts.stages = 0;
    EXPECT_THROW(PcmPath{opts}, std::invalid_argument);
    opts.stages = 4;
    opts.vdd = 0.0;
    EXPECT_THROW(PcmPath{opts}, std::invalid_argument);
}

TEST(PcmPathModel, DelayScalesWithStages) {
    PcmPath::Options short_opts;
    short_opts.stages = 8;
    PcmPath::Options long_opts;
    long_opts.stages = 16;
    const ProcessPoint pp = nominal_350nm();
    EXPECT_NEAR(PcmPath(long_opts).delay_ns(pp), 2.0 * PcmPath(short_opts).delay_ns(pp),
                1e-12);
}

TEST(PcmPathModel, SlowerAtSlowCorner) {
    const PcmPath path;
    ProcessPoint slow = nominal_350nm();
    slow.set(Param::kMuN, 350.0);
    slow.set(Param::kMuP, 110.0);
    slow.set(Param::kVthN, 0.62);
    EXPECT_GT(path.delay_ns(slow), path.delay_ns(nominal_350nm()));
}

TEST(PcmPathModel, DelayTracksSheetResistance) {
    const PcmPath path;
    ProcessPoint high_r = nominal_350nm();
    high_r.set(Param::kRsheet, 120.0);
    EXPECT_GT(path.delay_ns(high_r), path.delay_ns(nominal_350nm()));
}

TEST(RingOscillatorModel, RejectsEvenStageCount) {
    RingOscillatorPcm::Options opts;
    opts.stages = 30;
    EXPECT_THROW(RingOscillatorPcm{opts}, std::invalid_argument);
    opts.stages = 0;
    EXPECT_THROW(RingOscillatorPcm{opts}, std::invalid_argument);
}

TEST(RingOscillatorModel, FrequencyDropsWithMoreStages) {
    RingOscillatorPcm::Options few;
    few.stages = 11;
    RingOscillatorPcm::Options many;
    many.stages = 31;
    const ProcessPoint pp = nominal_350nm();
    EXPECT_GT(RingOscillatorPcm(few).frequency_mhz(pp),
              RingOscillatorPcm(many).frequency_mhz(pp));
}

TEST(RingOscillatorModel, FasterProcessOscillatesFaster) {
    const RingOscillatorPcm ro;
    ProcessPoint fast = nominal_350nm();
    fast.set(Param::kMuN, 500.0);
    fast.set(Param::kMuP, 170.0);
    EXPECT_GT(ro.frequency_mhz(fast), ro.frequency_mhz(nominal_350nm()));
}

TEST(RingOscillatorModel, AntiCorrelatedWithPathDelay) {
    // Across a set of process points, RO frequency and path delay move in
    // opposite directions — both are PCMs of the same silicon.
    const RingOscillatorPcm ro;
    const PcmPath path;
    ProcessPoint a = nominal_350nm();
    ProcessPoint b = nominal_350nm();
    b.set(Param::kMuN, 460.0);
    b.set(Param::kMuP, 155.0);
    const bool delay_faster = path.delay_ns(b) < path.delay_ns(a);
    const bool freq_higher = ro.frequency_mhz(b) > ro.frequency_mhz(a);
    EXPECT_EQ(delay_faster, freq_higher);
}

/// Property sweep: path delay is positive, finite and monotone in supply
/// voltage across a range of stage counts.
class PcmPathStages : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PcmPathStages, DelayPositiveAndSupplyMonotone) {
    PcmPath::Options lo_v;
    lo_v.stages = GetParam();
    lo_v.vdd = 2.5;
    PcmPath::Options hi_v;
    hi_v.stages = GetParam();
    hi_v.vdd = 3.3;
    const ProcessPoint pp = nominal_350nm();
    const double d_lo = PcmPath(lo_v).delay_ns(pp);
    const double d_hi = PcmPath(hi_v).delay_ns(pp);
    EXPECT_GT(d_lo, 0.0);
    EXPECT_GT(d_lo, d_hi);
}

INSTANTIATE_TEST_SUITE_P(Stages, PcmPathStages, ::testing::Values(1, 4, 16, 64));

}  // namespace

// --- monitored paths (appended: path-delay fingerprint substrate) --------------

#include "circuit/monitored_paths.hpp"

namespace {

using htd::circuit::MonitoredPathSet;
using htd::linalg::Vector;

TEST(MonitoredPaths, RejectsZeroCount) {
    EXPECT_THROW(MonitoredPathSet(0), std::invalid_argument);
}

TEST(MonitoredPaths, GeometriesAreDiversified) {
    const MonitoredPathSet paths(8);
    EXPECT_EQ(paths.size(), 8u);
    // Longer paths are slower: stage counts increase monotonically.
    const Vector d = paths.delays_ns(nominal_350nm());
    for (std::size_t i = 0; i < 8; ++i) EXPECT_GT(d[i], 0.0);
    EXPECT_GT(paths.geometries()[7].stages, paths.geometries()[0].stages);
}

TEST(MonitoredPaths, ExtraLoadSlowsOnlyTappedPaths) {
    const MonitoredPathSet paths(4);
    const auto pp = nominal_350nm();
    const Vector clean = paths.delays_ns(pp);
    Vector load(4);
    load[1] = 20.0;
    load[3] = 20.0;
    const Vector tapped = paths.delays_ns(pp, load);
    EXPECT_DOUBLE_EQ(tapped[0], clean[0]);
    EXPECT_GT(tapped[1], clean[1]);
    EXPECT_DOUBLE_EQ(tapped[2], clean[2]);
    EXPECT_GT(tapped[3], clean[3]);
}

TEST(MonitoredPaths, LoadSizeMismatchThrows) {
    const MonitoredPathSet paths(4);
    EXPECT_THROW((void)paths.delays_ns(nominal_350nm(), Vector(3)),
                 std::invalid_argument);
}

TEST(MonitoredPaths, DelaysTrackProcess) {
    const MonitoredPathSet paths(4);
    ProcessPoint slow = nominal_350nm();
    slow.set(Param::kMuN, 360.0);
    slow.set(Param::kMuP, 120.0);
    const Vector d_nom = paths.delays_ns(nominal_350nm());
    const Vector d_slow = paths.delays_ns(slow);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(d_slow[i], d_nom[i]);
}

}  // namespace
