/// Unit and property tests for the dense linear-algebra substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace {

using htd::linalg::Cholesky;
using htd::linalg::EigenResult;
using htd::linalg::Lu;
using htd::linalg::Matrix;
using htd::linalg::Qr;
using htd::linalg::symmetric_eigen;
using htd::linalg::Vector;

// --- Vector -------------------------------------------------------------------

TEST(Vector, DefaultIsEmpty) {
    Vector v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.size(), 0u);
}

TEST(Vector, SizeConstructorZeroFills) {
    Vector v(4);
    EXPECT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, FillConstructor) {
    Vector v(3, 2.5);
    EXPECT_EQ(v.sum(), 7.5);
}

TEST(Vector, InitializerList) {
    Vector v{1.0, 2.0, 3.0};
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], 3.0);
}

TEST(Vector, AtThrowsOutOfRange) {
    Vector v(2);
    EXPECT_THROW((void)v.at(2), std::out_of_range);
}

TEST(Vector, AdditionAndSubtraction) {
    Vector a{1.0, 2.0};
    Vector b{3.0, 5.0};
    EXPECT_EQ((a + b), (Vector{4.0, 7.0}));
    EXPECT_EQ((b - a), (Vector{2.0, 3.0}));
}

TEST(Vector, AdditionDimensionMismatchThrows) {
    Vector a{1.0};
    Vector b{1.0, 2.0};
    EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Vector, ScalarOps) {
    Vector v{2.0, 4.0};
    EXPECT_EQ((v * 0.5), (Vector{1.0, 2.0}));
    EXPECT_EQ((0.5 * v), (Vector{1.0, 2.0}));
    EXPECT_EQ((v / 2.0), (Vector{1.0, 2.0}));
    EXPECT_THROW(v /= 0.0, std::invalid_argument);
}

TEST(Vector, NormAndMean) {
    Vector v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.mean(), 3.5);
}

TEST(Vector, MinMax) {
    Vector v{3.0, -1.0, 2.0};
    EXPECT_EQ(v.min(), -1.0);
    EXPECT_EQ(v.max(), 3.0);
}

TEST(Vector, EmptyStatisticsThrow) {
    Vector v;
    EXPECT_THROW((void)v.mean(), std::invalid_argument);
    EXPECT_THROW((void)v.min(), std::invalid_argument);
    EXPECT_THROW((void)v.max(), std::invalid_argument);
}

TEST(Vector, DotProduct) {
    EXPECT_DOUBLE_EQ(htd::linalg::dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
    EXPECT_THROW((void)htd::linalg::dot(Vector{1.0}, Vector{1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Vector, SquaredDistance) {
    EXPECT_DOUBLE_EQ(htd::linalg::squared_distance({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

// --- Matrix ----------------------------------------------------------------------

TEST(Matrix, InitializerListShape) {
    Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
    const Matrix eye = Matrix::identity(3);
    EXPECT_EQ(eye(0, 0), 1.0);
    EXPECT_EQ(eye(0, 1), 0.0);
    const Matrix d = Matrix::diagonal(Vector{2.0, 3.0});
    EXPECT_EQ(d(1, 1), 3.0);
    EXPECT_EQ(d(1, 0), 0.0);
}

TEST(Matrix, RowColAccess) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.row(1), (Vector{3.0, 4.0}));
    EXPECT_EQ(m.col(0), (Vector{1.0, 3.0}));
    EXPECT_THROW((void)m.row(2), std::out_of_range);
    EXPECT_THROW((void)m.col(5), std::out_of_range);
}

TEST(Matrix, SetRowAndCol) {
    Matrix m(2, 2);
    m.set_row(0, Vector{1.0, 2.0});
    m.set_col(1, Vector{7.0, 8.0});
    EXPECT_EQ(m(0, 0), 1.0);
    EXPECT_EQ(m(0, 1), 7.0);
    EXPECT_EQ(m(1, 1), 8.0);
    EXPECT_THROW(m.set_row(0, Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, AppendRowGrowsAndChecksWidth) {
    Matrix m;
    m.append_row(Vector{1.0, 2.0});
    m.append_row(Vector{3.0, 4.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_THROW(m.append_row(Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, Transpose) {
    Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t(2, 1), 6.0);
    EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Block) {
    Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
    const Matrix b = m.block(1, 1, 2, 2);
    EXPECT_EQ(b, (Matrix{{5.0, 6.0}, {8.0, 9.0}}));
    EXPECT_THROW((void)m.block(2, 2, 2, 2), std::out_of_range);
}

TEST(Matrix, MatmulAgainstHandComputed) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    EXPECT_EQ(a.matmul(b), (Matrix{{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(Matrix, MatmulShapeMismatchThrows) {
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW((void)a.matmul(b), std::invalid_argument);
}

TEST(Matrix, Matvec) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(a.matvec(Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
}

TEST(Matrix, IsSymmetric) {
    Matrix s{{1.0, 2.0}, {2.0, 5.0}};
    Matrix ns{{1.0, 2.0}, {2.1, 5.0}};
    EXPECT_TRUE(s.is_symmetric());
    EXPECT_FALSE(ns.is_symmetric());
    EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(Matrix, Outer) {
    const Matrix o = htd::linalg::outer(Vector{1.0, 2.0}, Vector{3.0, 4.0});
    EXPECT_EQ(o, (Matrix{{3.0, 4.0}, {6.0, 8.0}}));
}

TEST(Matrix, FrobeniusNorm) {
    Matrix m{{3.0, 0.0}, {0.0, 4.0}};
    EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

// --- Cholesky ---------------------------------------------------------------------

TEST(Cholesky, FactorsKnownMatrix) {
    const Matrix a{{4.0, 2.0}, {2.0, 5.0}};
    const Cholesky chol(a);
    const Matrix l = chol.l();
    EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(l(1, 1), 2.0, 1e-12);
}

TEST(Cholesky, SolveRecoversSolution) {
    const Matrix a{{4.0, 2.0}, {2.0, 5.0}};
    const Vector x_true{1.0, -2.0};
    const Vector b = a.matvec(x_true);
    const Vector x = Cholesky(a).solve(b);
    EXPECT_NEAR(x[0], x_true[0], 1e-12);
    EXPECT_NEAR(x[1], x_true[1], 1e-12);
}

TEST(Cholesky, RejectsNonSquare) {
    EXPECT_THROW(Cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, RejectsNonSymmetric) {
    EXPECT_THROW(Cholesky(Matrix{{1.0, 2.0}, {0.0, 1.0}}), std::invalid_argument);
}

TEST(Cholesky, RejectsIndefinite) {
    EXPECT_THROW(Cholesky(Matrix{{1.0, 2.0}, {2.0, 1.0}}), std::domain_error);
}

TEST(Cholesky, LogDeterminant) {
    const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
    EXPECT_NEAR(Cholesky(a).log_determinant(), std::log(36.0), 1e-12);
}

// --- LU ---------------------------------------------------------------------------

TEST(Lu, SolveMatchesKnownSolution) {
    const Matrix a{{0.0, 2.0}, {1.0, 1.0}};  // needs pivoting
    const Vector x_true{3.0, -1.0};
    const Vector x = Lu(a).solve(a.matvec(x_true));
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], -1.0, 1e-12);
}

TEST(Lu, Determinant) {
    EXPECT_NEAR(Lu(Matrix{{2.0, 0.0}, {0.0, 3.0}}).determinant(), 6.0, 1e-12);
    EXPECT_NEAR(Lu(Matrix{{0.0, 1.0}, {1.0, 0.0}}).determinant(), -1.0, 1e-12);
}

TEST(Lu, SingularThrows) {
    EXPECT_THROW(Lu(Matrix{{1.0, 2.0}, {2.0, 4.0}}), std::domain_error);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
    const Matrix a{{3.0, 1.0, 0.0}, {1.0, 4.0, 2.0}, {0.0, 1.0, 5.0}};
    const Matrix inv = Lu(a).inverse();
    const Matrix eye = a.matmul(inv);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(eye(i, j), i == j ? 1.0 : 0.0, 1e-12);
        }
    }
}

// --- QR ----------------------------------------------------------------------------

TEST(Qr, ExactSolveSquare) {
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const Vector x_true{1.0, 2.0};
    const Vector x = Qr(a).solve(a.matvec(x_true));
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
    // Overdetermined line fit: y = 2x + 1 with exact data.
    Matrix a(4, 2);
    Vector b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = static_cast<double>(i);
        b[i] = 1.0 + 2.0 * static_cast<double>(i);
    }
    const Vector x = Qr(a).solve(b);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(Qr, RankDeficientThrows) {
    Matrix a(3, 2);
    for (std::size_t i = 0; i < 3; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = 2.0;  // second column is a multiple of the first
    }
    EXPECT_THROW((void)Qr(a).solve(Vector(3)), std::domain_error);
}

TEST(Qr, RequiresTall) {
    EXPECT_THROW(Qr(Matrix(2, 3)), std::invalid_argument);
}

// --- symmetric eigen ----------------------------------------------------------------

TEST(SymmetricEigen, DiagonalMatrix) {
    const EigenResult r = symmetric_eigen(Matrix::diagonal(Vector{1.0, 3.0, 2.0}));
    EXPECT_NEAR(r.values[0], 3.0, 1e-12);
    EXPECT_NEAR(r.values[1], 2.0, 1e-12);
    EXPECT_NEAR(r.values[2], 1.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
    // eigenvalues of [[2,1],[1,2]] are 3 and 1
    const EigenResult r = symmetric_eigen(Matrix{{2.0, 1.0}, {1.0, 2.0}});
    EXPECT_NEAR(r.values[0], 3.0, 1e-12);
    EXPECT_NEAR(r.values[1], 1.0, 1e-12);
}

TEST(SymmetricEigen, RejectsNonSymmetric) {
    EXPECT_THROW((void)symmetric_eigen(Matrix{{1.0, 2.0}, {0.0, 1.0}}),
                 std::invalid_argument);
}

/// Property sweep: reconstruction A = V diag(lambda) V^T and orthonormality
/// for random symmetric matrices of several sizes.
class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, ReconstructionAndOrthonormality) {
    const std::size_t n = GetParam();
    htd::rng::Rng rng(42 + n);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            a(i, j) = rng.normal();
            a(j, i) = a(i, j);
        }
    }
    const EigenResult r = symmetric_eigen(a);

    // eigenvalues sorted descending
    for (std::size_t k = 1; k < n; ++k) EXPECT_GE(r.values[k - 1], r.values[k]);

    // V V^T = I
    const Matrix vvt = r.vectors.matmul(r.vectors.transposed());
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_NEAR(vvt(i, j), i == j ? 1.0 : 0.0, 1e-9);
        }
    }

    // A = V diag V^T
    Matrix recon(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                acc += r.vectors(i, k) * r.values[k] * r.vectors(j, k);
            }
            recon(i, j) = acc;
        }
    }
    EXPECT_LT((recon - a).max_abs(), 1e-9 * (1.0 + a.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty, ::testing::Values(1, 2, 3, 5, 8, 13));

/// Property sweep: Cholesky/LU/QR all solve the same random SPD system.
class SolverProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverProperty, AllSolversAgreeOnSpdSystems) {
    const std::size_t n = GetParam();
    htd::rng::Rng rng(7 * n + 1);
    // SPD matrix: A = B B^T + n I
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
    Matrix a = b.matmul(b.transposed());
    for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);

    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.normal();
    const Vector rhs = a.matvec(x_true);

    const Vector x_chol = Cholesky(a).solve(rhs);
    const Vector x_lu = Lu(a).solve(rhs);
    const Vector x_qr = Qr(a).solve(rhs);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x_chol[i], x_true[i], 1e-8);
        EXPECT_NEAR(x_lu[i], x_true[i], 1e-8);
        EXPECT_NEAR(x_qr[i], x_true[i], 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverProperty, ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(SolveSpdRidge, RegularizesSemiDefinite) {
    // Rank-1 PSD matrix; plain Cholesky fails, the ridge version succeeds.
    const Matrix a = htd::linalg::outer(Vector{1.0, 1.0}, Vector{1.0, 1.0});
    EXPECT_THROW((void)Cholesky(a), std::domain_error);
    const Vector x = htd::linalg::solve_spd_ridge(a, Vector{2.0, 2.0});
    // Solution of the regularized system still reproduces b approximately.
    const Vector b_hat = a.matvec(x);
    EXPECT_NEAR(b_hat[0], 2.0, 1e-3);
}

}  // namespace

// --- SVD (appended) ------------------------------------------------------------

namespace {

using htd::linalg::singular_values;
using htd::linalg::SvdResult;

TEST(Svd, DiagonalMatrix) {
    const SvdResult r = singular_values(Matrix::diagonal(Vector{3.0, 1.0, 2.0}));
    EXPECT_NEAR(r.values[0], 3.0, 1e-10);
    EXPECT_NEAR(r.values[1], 2.0, 1e-10);
    EXPECT_NEAR(r.values[2], 1.0, 1e-10);
}

TEST(Svd, RequiresTall) {
    EXPECT_THROW((void)singular_values(Matrix(2, 3)), std::invalid_argument);
}

TEST(Svd, MatchesEigenOfGram) {
    // Singular values squared are the eigenvalues of A^T A.
    htd::rng::Rng rng(71);
    Matrix a(12, 4);
    for (std::size_t i = 0; i < 12; ++i)
        for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.normal();
    const SvdResult svd = singular_values(a);
    const EigenResult eig = symmetric_eigen(a.transposed().matmul(a));
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_NEAR(svd.values[k] * svd.values[k], eig.values[k], 1e-8);
    }
}

class SvdProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SvdProperty, ReconstructionAndOrthogonality) {
    const std::size_t n = GetParam();
    const std::size_t m = n + 3;
    htd::rng::Rng rng(81 + n);
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    const SvdResult r = singular_values(a);

    // Descending, non-negative singular values.
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_GE(r.values[k], 0.0);
        if (k > 0) {
            EXPECT_GE(r.values[k - 1], r.values[k]);
        }
    }
    // U^T U = I and V^T V = I.
    const Matrix utu = r.u.transposed().matmul(r.u);
    const Matrix vtv = r.v.transposed().matmul(r.v);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_NEAR(utu(i, j), i == j ? 1.0 : 0.0, 1e-9);
            EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
        }
    }
    // A = U diag(s) V^T.
    Matrix recon(m, n);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                acc += r.u(i, k) * r.values[k] * r.v(j, k);
            recon(i, j) = acc;
        }
    EXPECT_LT((recon - a).max_abs(), 1e-9 * (1.0 + a.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdProperty, ::testing::Values(1, 2, 4, 6, 10));

TEST(Svd, RankDeficientHasZeroSingularValue) {
    Matrix a(4, 2);
    for (std::size_t i = 0; i < 4; ++i) {
        a(i, 0) = static_cast<double>(i + 1);
        a(i, 1) = 2.0 * static_cast<double>(i + 1);  // multiple of column 0
    }
    const SvdResult r = singular_values(a);
    EXPECT_GT(r.values[0], 1.0);
    EXPECT_NEAR(r.values[1], 0.0, 1e-9);
}

}  // namespace
