/// Tests for the ROC analysis utilities and the k-NN one-class baseline.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "ml/knn_detector.hpp"
#include "ml/metrics.hpp"
#include "rng/rng.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::DeviceLabel;
using htd::ml::KnnDetector;
using htd::ml::roc_auc;
using htd::ml::roc_curve;
using htd::rng::Rng;

// --- ROC --------------------------------------------------------------------

TEST(Roc, RejectsDegenerateInput) {
    const std::vector<double> scores{1.0, 2.0};
    const std::vector<DeviceLabel> one_class{DeviceLabel::kTrojanFree,
                                             DeviceLabel::kTrojanFree};
    EXPECT_THROW((void)roc_curve(scores, one_class), std::invalid_argument);
    const std::vector<DeviceLabel> short_labels{DeviceLabel::kTrojanFree};
    EXPECT_THROW((void)roc_curve(scores, short_labels), std::invalid_argument);
    EXPECT_THROW((void)roc_curve({}, std::vector<DeviceLabel>{}),
                 std::invalid_argument);
}

TEST(Roc, PerfectSeparationGivesAucOne) {
    // Free devices score high, infested low — perfectly separable.
    const std::vector<double> scores{3.0, 2.5, 2.0, -1.0, -2.0};
    const std::vector<DeviceLabel> labels{
        DeviceLabel::kTrojanFree, DeviceLabel::kTrojanFree, DeviceLabel::kTrojanFree,
        DeviceLabel::kTrojanInfested, DeviceLabel::kTrojanInfested};
    const auto curve = roc_curve(scores, labels);
    EXPECT_NEAR(roc_auc(curve), 1.0, 1e-12);
    // The curve contains an operating point with FP = 0, FN = 0.
    bool has_perfect = false;
    for (const auto& pt : curve) {
        if (pt.fp_rate == 0.0 && pt.fn_rate == 0.0) has_perfect = true;
    }
    EXPECT_TRUE(has_perfect);
}

TEST(Roc, InvertedScoresGiveAucZero) {
    const std::vector<double> scores{-1.0, -2.0, 2.0, 3.0};
    const std::vector<DeviceLabel> labels{
        DeviceLabel::kTrojanFree, DeviceLabel::kTrojanFree,
        DeviceLabel::kTrojanInfested, DeviceLabel::kTrojanInfested};
    EXPECT_NEAR(roc_auc(roc_curve(scores, labels)), 0.0, 1e-12);
}

TEST(Roc, RandomScoresGiveAucNearHalf) {
    Rng rng(1);
    const std::size_t n = 4000;
    std::vector<double> scores(n);
    std::vector<DeviceLabel> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        scores[i] = rng.normal();
        labels[i] = rng.bernoulli(0.5) ? DeviceLabel::kTrojanFree
                                       : DeviceLabel::kTrojanInfested;
    }
    EXPECT_NEAR(roc_auc(roc_curve(scores, labels)), 0.5, 0.03);
}

TEST(Roc, CurveIsMonotone) {
    Rng rng(2);
    std::vector<double> scores(200);
    std::vector<DeviceLabel> labels(200);
    for (std::size_t i = 0; i < 200; ++i) {
        const bool free = rng.bernoulli(0.4);
        labels[i] = free ? DeviceLabel::kTrojanFree : DeviceLabel::kTrojanInfested;
        scores[i] = rng.normal(free ? 1.0 : 0.0, 1.0);
    }
    const auto curve = roc_curve(scores, labels);
    for (std::size_t k = 1; k < curve.size(); ++k) {
        EXPECT_GE(curve[k].fp_rate, curve[k - 1].fp_rate);
        EXPECT_LE(curve[k].fn_rate, curve[k - 1].fn_rate);
        EXPECT_LE(curve[k].threshold, curve[k - 1].threshold);
    }
    EXPECT_THROW((void)roc_auc(std::vector<htd::ml::RocPoint>{{0, 0, 0}}),
                 std::invalid_argument);
}

// --- KnnDetector --------------------------------------------------------------

Matrix blob(Rng& rng, std::size_t n, std::size_t d, double mean, double sd) {
    Matrix data(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) data(r, c) = rng.normal(mean, sd);
    return data;
}

TEST(Knn, RejectsBadOptions) {
    KnnDetector::Options opts;
    opts.k = 0;
    EXPECT_THROW(KnnDetector{opts}, std::invalid_argument);
    KnnDetector::Options bad_nu;
    bad_nu.nu = 1.0;
    EXPECT_THROW(KnnDetector{bad_nu}, std::invalid_argument);
    KnnDetector::Options zero_cap;
    zero_cap.max_training_samples = 0;
    EXPECT_THROW(KnnDetector{zero_cap}, std::invalid_argument);
}

TEST(Knn, NeedsMoreThanKSamples) {
    KnnDetector detector;
    Rng rng(3);
    EXPECT_THROW(detector.fit(blob(rng, 5, 2, 0.0, 1.0)), std::invalid_argument);
}

TEST(Knn, ThrowsBeforeFit) {
    const KnnDetector detector;
    EXPECT_THROW((void)detector.score(Vector{0.0}), std::logic_error);
}

TEST(Knn, ContainsCoreRejectsOutliers) {
    Rng rng(4);
    KnnDetector detector;
    detector.fit(blob(rng, 300, 2, 0.0, 1.0));
    EXPECT_TRUE(detector.contains(Vector{0.0, 0.0}));
    EXPECT_FALSE(detector.contains(Vector{10.0, 10.0}));
}

TEST(Knn, NuControlsTrainingRejectionFraction) {
    Rng rng(5);
    const Matrix data = blob(rng, 400, 2, 0.0, 1.0);
    KnnDetector::Options opts;
    opts.nu = 0.2;
    KnnDetector detector(opts);
    detector.fit(data);
    std::size_t outside = 0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
        if (!detector.contains(data.row(r))) ++outside;
    }
    // Training self-scores are leave-one-out, full scores include the point
    // itself as its own 1st neighbor, so full-score rejection <= nu.
    EXPECT_LE(outside, 400u * 25 / 100);
}

TEST(Knn, ScoreGrowsWithDistance) {
    Rng rng(6);
    KnnDetector detector;
    detector.fit(blob(rng, 200, 1, 0.0, 1.0));
    EXPECT_LT(detector.score(Vector{0.0}), detector.score(Vector{3.0}));
    EXPECT_LT(detector.score(Vector{3.0}), detector.score(Vector{6.0}));
}

TEST(Knn, SubsampleCapRespected) {
    Rng rng(7);
    KnnDetector::Options opts;
    opts.max_training_samples = 100;
    KnnDetector detector(opts);
    detector.fit(blob(rng, 3000, 2, 5.0, 1.0));
    EXPECT_TRUE(detector.contains(Vector{5.0, 5.0}));
    EXPECT_FALSE(detector.contains(Vector{-10.0, 20.0}));
}

TEST(Knn, DimensionMismatchThrows) {
    Rng rng(8);
    KnnDetector detector;
    detector.fit(blob(rng, 50, 3, 0.0, 1.0));
    EXPECT_THROW((void)detector.score(Vector{0.0, 0.0}), std::invalid_argument);
}

}  // namespace
