/// \file test_artifact.cpp
/// The htd.boundary.v1 calibrate/score contract (DESIGN.md §14): a clean
/// artifact reproduces the in-process pipeline's decision values bitwise;
/// every injected corruption mode is either rejected with a typed
/// ArtifactError or survived with the damage recorded loudly (failed
/// sections + degraded BoundaryStatus) while the surviving boundaries keep
/// scoring; strict mode turns every recorded degradation into a rejection.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "io/json.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/artifact_fault.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/scorer.hpp"

namespace {

using namespace htd;

/// Calibrates one reduced-budget pipeline for the whole suite and keeps the
/// pristine artifact around as text — the unit every corruption test
/// perturbs.
class ArtifactSuite : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        core::ExperimentConfig config;
        config.n_chips = 10;
        config.pipeline.monte_carlo_samples = 40;
        config.pipeline.synthetic_samples = 3000;

        rng::Rng rng(config.seed);
        rng::Rng fab_rng = rng.split();
        const silicon::DuttDataset devices =
            core::fabricate_and_measure(config, fab_rng);
        fingerprints_ = devices.fingerprints;

        const core::ProcessPair processes =
            core::make_process_pair(config.process_shift_sigma);
        pipeline_ = std::make_unique<core::GoldenFreePipeline>(
            config.pipeline,
            silicon::SpiceSimulator(config.platform, processes.spice));
        rng::Rng sim_rng = rng.split();
        rng::Rng pipe_rng = rng.split();
        pipeline_->run_premanufacturing(sim_rng);
        pipeline_->run_silicon_stage(devices.pcms, pipe_rng);

        seed_ = config.seed;
        artifact_doc_ = core::BoundaryArtifact::from_pipeline(*pipeline_, seed_,
                                                              "test_artifact")
                            .to_json();
        artifact_text_ = artifact_doc_.dump(2) + "\n";
    }

    static void TearDownTestSuite() { pipeline_.reset(); }

    /// Temp path unique to this process; removed by the caller.
    static std::string temp_path(const std::string& tag) {
        return (std::filesystem::temp_directory_path() /
                ("htd_artifact_test_" + tag + "_" + std::to_string(::getpid()) +
                 ".json"))
            .string();
    }

    /// Scorer decision values must equal the pipeline's exactly — the
    /// bitwise-parity acceptance criterion, checked with EXPECT_EQ on
    /// doubles (no tolerance).
    static void expect_bitwise_parity(const core::BoundaryScorer& scorer,
                                      core::Boundary b) {
        const linalg::Vector expected =
            pipeline_->decision_values(b, fingerprints_);
        const linalg::Vector got = scorer.decision_values(b, fingerprints_);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i], expected[i])
                << core::boundary_name(b) << " device " << i;
        }
    }

    static std::unique_ptr<core::GoldenFreePipeline> pipeline_;
    static linalg::Matrix fingerprints_;
    static io::Json artifact_doc_;
    static std::string artifact_text_;
    static std::uint64_t seed_;
};

std::unique_ptr<core::GoldenFreePipeline> ArtifactSuite::pipeline_;
linalg::Matrix ArtifactSuite::fingerprints_;
io::Json ArtifactSuite::artifact_doc_;
std::string ArtifactSuite::artifact_text_;
std::uint64_t ArtifactSuite::seed_;

/// Recompute a section's name-bound CRC after tampering with its payload.
double recomputed_crc(const std::string& name, const io::Json& payload) {
    std::string bytes = name;
    bytes.push_back('\0');
    bytes += payload.dump(0);
    return static_cast<double>(core::crc32(bytes));
}

TEST_F(ArtifactSuite, CleanRoundTripScoresBitIdentical) {
    core::ArtifactLoadReport rep;
    core::BoundaryScorer scorer(
        core::BoundaryArtifact::from_json(artifact_doc_, {}, &rep));
    EXPECT_TRUE(rep.notes.empty());
    EXPECT_TRUE(rep.failed_sections.empty());

    EXPECT_EQ(scorer.artifact().provenance().seed, seed_);
    EXPECT_EQ(scorer.artifact().provenance().tool, "test_artifact");
    for (const core::Boundary b : core::kAllBoundaries) {
        EXPECT_EQ(scorer.boundary_status(b).health,
                  pipeline_->boundary_status(b).health)
            << core::boundary_name(b);
        ASSERT_EQ(scorer.boundary_ready(b), pipeline_->boundary_ready(b));
        if (scorer.boundary_ready(b)) expect_bitwise_parity(scorer, b);
    }
}

TEST_F(ArtifactSuite, AtomicSaveThenLoadIsByteStable) {
    const std::string path = temp_path("save");
    core::BoundaryArtifact::from_json(artifact_doc_).save(path);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    const core::BoundaryArtifact loaded = core::BoundaryArtifact::load(path);
    EXPECT_EQ(loaded.to_json().dump(2), artifact_doc_.dump(2));
    std::filesystem::remove(path);
}

TEST_F(ArtifactSuite, VersionSkewIsRejected) {
    io::Json doc = artifact_doc_;
    doc.set("version", core::kBoundaryArtifactVersion + 1);
    try {
        (void)core::BoundaryArtifact::from_json(doc);
        FAIL() << "version skew accepted";
    } catch (const core::ArtifactError& e) {
        EXPECT_EQ(e.artifact_code(), core::ArtifactErrorCode::kVersionSkew);
    }

    doc.set("schema", "htd.bscores.v1");
    try {
        (void)core::BoundaryArtifact::from_json(doc);
        FAIL() << "wrong schema accepted";
    } catch (const core::ArtifactError& e) {
        EXPECT_EQ(e.artifact_code(), core::ArtifactErrorCode::kSchema);
    }
}

TEST_F(ArtifactSuite, ConfigHashMismatchIsRejected) {
    // Tamper with the config payload and recompute the CRC so the hash
    // check — not the CRC — is what trips: a config swapped wholesale (CRC
    // intact relative to its own bytes) must still be refused.
    io::Json doc = artifact_doc_;
    io::Json sections = doc.at("sections");
    io::Json entry = sections.at("config");
    io::Json payload = entry.at("payload");
    payload.set("tampered", true);
    entry.set("crc32", recomputed_crc("config", payload));
    entry.set("payload", std::move(payload));
    sections.set("config", std::move(entry));
    doc.set("sections", std::move(sections));

    try {
        (void)core::BoundaryArtifact::from_json(doc);
        FAIL() << "config-hash mismatch accepted";
    } catch (const core::ArtifactError& e) {
        EXPECT_EQ(e.artifact_code(), core::ArtifactErrorCode::kConfigHash);
        EXPECT_EQ(e.section(), "provenance");
    }
}

TEST_F(ArtifactSuite, CorruptBoundarySectionDegradesJustThatBoundary) {
    // Flip the stored CRC of boundary.B5: tolerant load must mark exactly
    // B5 failed (with the rejection recorded in its status detail) and keep
    // every other boundary scoring bitwise-identically; strict load refuses.
    io::Json doc = artifact_doc_;
    io::Json sections = doc.at("sections");
    io::Json entry = sections.at("boundary.B5");
    entry.set("crc32", entry.at("crc32").number() + 1.0);
    sections.set("boundary.B5", std::move(entry));
    doc.set("sections", std::move(sections));

    core::ArtifactLoadReport rep;
    core::BoundaryScorer scorer(
        core::BoundaryArtifact::from_json(doc, {}, &rep));
    ASSERT_EQ(rep.failed_sections.size(), 1u);
    EXPECT_EQ(rep.failed_sections[0], "boundary.B5");

    const core::BoundaryStatus& st = scorer.boundary_status(core::Boundary::kB5);
    EXPECT_EQ(st.health, core::BoundaryHealth::kFailed);
    EXPECT_NE(st.detail.find("artifact section rejected"), std::string::npos)
        << st.detail;
    EXPECT_FALSE(scorer.boundary_ready(core::Boundary::kB5));
    EXPECT_THROW((void)scorer.classify(core::Boundary::kB5, fingerprints_),
                 core::BoundaryUnavailableError);

    for (const core::Boundary b :
         {core::Boundary::kB1, core::Boundary::kB2, core::Boundary::kB3,
          core::Boundary::kB4}) {
        if (!pipeline_->boundary_ready(b)) continue;
        ASSERT_TRUE(scorer.boundary_ready(b)) << core::boundary_name(b);
        expect_bitwise_parity(scorer, b);
    }

    EXPECT_THROW((void)core::BoundaryArtifact::from_json(doc, {.strict = true}),
                 core::ArtifactError);
}

TEST_F(ArtifactSuite, SectionSwapFailsBothNameBoundCrcs) {
    // Swapping two intact payloads must fail both sections: the CRC binds
    // the section *name*, so byte-identical payloads cannot migrate.
    io::Json doc = artifact_doc_;
    io::Json sections = doc.at("sections");
    io::Json b1 = sections.at("boundary.B1");
    io::Json b3 = sections.at("boundary.B3");
    sections.set("boundary.B1", std::move(b3));
    sections.set("boundary.B3", std::move(b1));
    doc.set("sections", std::move(sections));

    core::ArtifactLoadReport rep;
    core::BoundaryScorer scorer(
        core::BoundaryArtifact::from_json(doc, {}, &rep));
    ASSERT_EQ(rep.failed_sections.size(), 2u);
    EXPECT_EQ(scorer.boundary_status(core::Boundary::kB1).health,
              core::BoundaryHealth::kFailed);
    EXPECT_EQ(scorer.boundary_status(core::Boundary::kB3).health,
              core::BoundaryHealth::kFailed);
    if (pipeline_->boundary_ready(core::Boundary::kB4)) {
        expect_bitwise_parity(scorer, core::Boundary::kB4);
    }
}

/// Every injector mode, several seeds each: the artifact is either rejected
/// with a typed ArtifactError or loads with the damage recorded and the
/// surviving boundaries still scoring bitwise-identically. Strict mode
/// rejects whatever the tolerant path merely degraded.
class ArtifactFaultSweep
    : public ArtifactSuite,
      public ::testing::WithParamInterface<core::ArtifactFault> {};

TEST_P(ArtifactFaultSweep, EveryCorruptionIsRejectedOrSurvivedLoudly) {
    const core::ArtifactFault fault = GetParam();
    const std::string path =
        temp_path(std::string("fault_") + core::artifact_fault_name(fault));

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        std::string text = artifact_text_;
        core::ArtifactFaultInjector injector(seed);
        const std::string what = injector.corrupt(text, fault);
        SCOPED_TRACE(what + " (seed " + std::to_string(seed) + ")");

        std::filesystem::remove(path);
        {
            std::ofstream out(path, std::ios::binary);
            ASSERT_TRUE(out.is_open());
            out << text;
        }

        bool rejected = false;
        try {
            core::ArtifactLoadReport rep;
            const core::BoundaryScorer scorer(
                core::BoundaryArtifact::load(path, {}, &rep));
            // Survived: the damage must be visible, never silent, and the
            // boundaries that made it through still score exactly.
            EXPECT_FALSE(rep.failed_sections.empty());
            for (const core::Boundary b : core::kAllBoundaries) {
                if (!scorer.boundary_ready(b)) continue;
                expect_bitwise_parity(scorer, b);
            }
            // ... and strict mode refuses what tolerant mode degraded.
            EXPECT_THROW(
                (void)core::BoundaryArtifact::load(path, {.strict = true}),
                core::ArtifactError);
        } catch (const core::ArtifactError& e) {
            rejected = true;
            EXPECT_NE(std::string(e.what()).find("artifact"), std::string::npos);
        }

        // Truncation and version skew can never be scored around.
        if (fault == core::ArtifactFault::kTruncate ||
            fault == core::ArtifactFault::kStaleVersion) {
            EXPECT_TRUE(rejected);
        }
    }
    std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, ArtifactFaultSweep,
    ::testing::Values(core::ArtifactFault::kTruncate,
                      core::ArtifactFault::kBitFlip,
                      core::ArtifactFault::kSectionSwap,
                      core::ArtifactFault::kStaleVersion),
    [](const ::testing::TestParamInfo<core::ArtifactFault>& fault_info) {
        switch (fault_info.param) {
            case core::ArtifactFault::kTruncate: return std::string("Truncate");
            case core::ArtifactFault::kBitFlip: return std::string("BitFlip");
            case core::ArtifactFault::kSectionSwap:
                return std::string("SectionSwap");
            case core::ArtifactFault::kStaleVersion:
                return std::string("StaleVersion");
        }
        return std::string("Unknown");
    });

}  // namespace
