/// Tests for the AES core against the FIPS-197 reference vectors.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "crypto/aes.hpp"
#include "rng/rng.hpp"

namespace {

using htd::crypto::Aes;
using htd::crypto::AesKeySize;
using htd::crypto::Block;

Block from_hex(const std::string& hex) {
    Block b{};
    for (std::size_t i = 0; i < 16; ++i) {
        b[i] = static_cast<std::uint8_t>(std::stoul(hex.substr(2 * i, 2), nullptr, 16));
    }
    return b;
}

std::vector<std::uint8_t> key_from_hex(const std::string& hex) {
    std::vector<std::uint8_t> k(hex.size() / 2);
    for (std::size_t i = 0; i < k.size(); ++i) {
        k[i] = static_cast<std::uint8_t>(std::stoul(hex.substr(2 * i, 2), nullptr, 16));
    }
    return k;
}

TEST(Aes128, Fips197AppendixC1) {
    const Block pt = from_hex("00112233445566778899aabbccddeeff");
    const auto key = key_from_hex("000102030405060708090a0b0c0d0e0f");
    const Aes aes(key, AesKeySize::k128);
    EXPECT_EQ(aes.encrypt(pt), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

TEST(Aes192, Fips197AppendixC2) {
    const Block pt = from_hex("00112233445566778899aabbccddeeff");
    const auto key =
        key_from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
    const Aes aes(key, AesKeySize::k192);
    EXPECT_EQ(aes.encrypt(pt), from_hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
}

TEST(Aes256, Fips197AppendixC3) {
    const Block pt = from_hex("00112233445566778899aabbccddeeff");
    const auto key = key_from_hex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
    const Aes aes(key, AesKeySize::k256);
    EXPECT_EQ(aes.encrypt(pt), from_hex("8ea2b7ca516745bfeafc49904b496089"));
}

TEST(Aes128, Fips197AppendixB) {
    const Block pt = from_hex("3243f6a8885a308d313198a2e0370734");
    const auto key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
    const Aes aes(key, AesKeySize::k128);
    EXPECT_EQ(aes.encrypt(pt), from_hex("3925841d02dc09fbdc118597196a0b32"));
}

TEST(Aes, DecryptInvertsKnownVector) {
    const Block ct = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
    const auto key = key_from_hex("000102030405060708090a0b0c0d0e0f");
    const Aes aes(key, AesKeySize::k128);
    EXPECT_EQ(aes.decrypt(ct), from_hex("00112233445566778899aabbccddeeff"));
}

TEST(Aes, RoundCounts) {
    const auto k128 = key_from_hex("000102030405060708090a0b0c0d0e0f");
    EXPECT_EQ(Aes(k128, AesKeySize::k128).rounds(), 10u);
    const auto k192 =
        key_from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
    EXPECT_EQ(Aes(k192, AesKeySize::k192).rounds(), 12u);
    const auto k256 = key_from_hex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
    EXPECT_EQ(Aes(k256, AesKeySize::k256).rounds(), 14u);
}

TEST(Aes, WrongKeyLengthThrows) {
    const auto key = key_from_hex("00010203");
    EXPECT_THROW(Aes(key, AesKeySize::k128), std::invalid_argument);
    const auto k128 = key_from_hex("000102030405060708090a0b0c0d0e0f");
    EXPECT_THROW(Aes(k128, AesKeySize::k256), std::invalid_argument);
}

/// Property: decrypt(encrypt(x)) == x for random blocks and keys, every size.
class AesRoundTrip : public ::testing::TestWithParam<AesKeySize> {};

TEST_P(AesRoundTrip, RandomBlocksRoundTrip) {
    htd::rng::Rng rng(17);
    std::vector<std::uint8_t> key(htd::crypto::key_bytes(GetParam()));
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    const Aes aes(key, GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        Block pt{};
        for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
        EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesRoundTrip,
                         ::testing::Values(AesKeySize::k128, AesKeySize::k192,
                                           AesKeySize::k256));

TEST(Aes, EcbEncryptsBlockwise) {
    const auto key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
    const Aes aes(key, AesKeySize::k128);
    const Block pt = from_hex("3243f6a8885a308d313198a2e0370734");
    std::vector<std::uint8_t> two_blocks(pt.begin(), pt.end());
    two_blocks.insert(two_blocks.end(), pt.begin(), pt.end());
    const auto ct = aes.encrypt_ecb(two_blocks);
    ASSERT_EQ(ct.size(), 32u);
    const Block expected = from_hex("3925841d02dc09fbdc118597196a0b32");
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(ct[i], expected[i]);
        EXPECT_EQ(ct[16 + i], expected[i]);  // ECB: identical blocks match
    }
}

TEST(Aes, EcbRejectsPartialBlock) {
    const auto key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
    const Aes aes(key, AesKeySize::k128);
    EXPECT_THROW((void)aes.encrypt_ecb(std::vector<std::uint8_t>(15)),
                 std::invalid_argument);
}

TEST(BlockBits, RoundTripAndBitOrder) {
    Block b{};
    b[0] = 0x80;  // MSB of byte 0 -> bit 0
    b[15] = 0x01; // LSB of byte 15 -> bit 127
    const auto bits = htd::crypto::block_to_bits(b);
    EXPECT_TRUE(bits[0]);
    EXPECT_FALSE(bits[1]);
    EXPECT_TRUE(bits[127]);
    EXPECT_EQ(htd::crypto::bits_to_block(bits), b);
}

TEST(BlockBits, RandomRoundTrip) {
    htd::rng::Rng rng(18);
    for (int trial = 0; trial < 20; ++trial) {
        Block b{};
        for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
        EXPECT_EQ(htd::crypto::bits_to_block(htd::crypto::block_to_bits(b)), b);
    }
}

TEST(Aes, AvalancheEffect) {
    // Flipping one plaintext bit flips roughly half the ciphertext bits.
    const auto key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
    const Aes aes(key, AesKeySize::k128);
    Block pt = from_hex("3243f6a8885a308d313198a2e0370734");
    const Block ct1 = aes.encrypt(pt);
    pt[0] ^= 0x01;
    const Block ct2 = aes.encrypt(pt);
    int flipped = 0;
    for (std::size_t i = 0; i < 16; ++i) {
        std::uint8_t diff = ct1[i] ^ ct2[i];
        while (diff) {
            flipped += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_GT(flipped, 40);
    EXPECT_LT(flipped, 90);
}

}  // namespace
