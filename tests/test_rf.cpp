/// Tests for the UWB transmitter, power amplifier and bench power meter.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>

#include "process/variation_model.hpp"
#include "rf/uwb.hpp"
#include "rng/rng.hpp"
#include "trojan/trojan.hpp"

namespace {

using htd::process::nominal_350nm;
using htd::process::Param;
using htd::process::ProcessPoint;
using htd::rf::dbm_to_mw;
using htd::rf::mw_to_dbm;
using htd::rf::PowerAmplifier;
using htd::rf::PowerMeter;
using htd::rf::UwbPulseParams;
using htd::rf::UwbTransmitter;
using htd::rng::Rng;
using htd::trojan::AmplitudeLeakTrojan;
using htd::trojan::FrequencyLeakTrojan;
using htd::trojan::PulseObservation;

std::array<bool, 128> all_ones() {
    std::array<bool, 128> bits{};
    bits.fill(true);
    return bits;
}

std::array<bool, 128> alternating() {
    std::array<bool, 128> bits{};
    for (std::size_t i = 0; i < 128; i += 2) bits[i] = true;
    return bits;
}

TEST(DbmConversion, RoundTripsAndKnownValues) {
    EXPECT_DOUBLE_EQ(mw_to_dbm(1.0), 0.0);
    EXPECT_NEAR(mw_to_dbm(2.0), 3.0103, 1e-4);
    EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-12);
    EXPECT_NEAR(dbm_to_mw(mw_to_dbm(0.37)), 0.37, 1e-12);
    EXPECT_THROW((void)mw_to_dbm(0.0), std::domain_error);
}

TEST(PaModel, NominalPulseIsUnitReference) {
    const PowerAmplifier pa;
    const UwbPulseParams pulse = pa.pulse_params(nominal_350nm());
    EXPECT_NEAR(pulse.amplitude_v, 1.0, 1e-9);
    EXPECT_NEAR(pulse.center_freq_ghz, 4.0, 1e-9);
    EXPECT_NEAR(pulse.tau_ns, 0.5, 1e-9);
}

TEST(PaModel, AmplitudeTracksMobility) {
    const PowerAmplifier pa;
    ProcessPoint fast = nominal_350nm();
    fast.set(Param::kMuN, 500.0);
    EXPECT_GT(pa.pulse_params(fast).amplitude_v, 1.0);
    ProcessPoint slow = nominal_350nm();
    slow.set(Param::kMuN, 350.0);
    EXPECT_LT(pa.pulse_params(slow).amplitude_v, 1.0);
}

TEST(PaModel, AmplitudeDropsWithHigherThreshold) {
    const PowerAmplifier pa;
    ProcessPoint high_vth = nominal_350nm();
    high_vth.set(Param::kVthN, 0.62);
    EXPECT_LT(pa.pulse_params(high_vth).amplitude_v, 1.0);
}

TEST(PaModel, FrequencyTrimDampensCapacitanceSpread) {
    PowerAmplifier::Options trimmed;      // default exponent 0.15
    PowerAmplifier::Options free_running;
    free_running.freq_tuning_exponent = 0.5;
    ProcessPoint thick_ox = nominal_350nm();
    thick_ox.set(Param::kTox, 8.0);  // lower Cox -> higher f
    const double f_trim =
        PowerAmplifier(trimmed).pulse_params(thick_ox).center_freq_ghz;
    const double f_free =
        PowerAmplifier(free_running).pulse_params(thick_ox).center_freq_ghz;
    EXPECT_GT(f_trim, 4.0);
    EXPECT_GT(f_free, f_trim);  // untrimmed tank moves further
}

TEST(PaModel, TauTracksRcProduct) {
    const PowerAmplifier pa;
    ProcessPoint high_r = nominal_350nm();
    high_r.set(Param::kRsheet, 90.0);
    EXPECT_GT(pa.pulse_params(high_r).tau_ns, 0.5);
}

TEST(PaModel, RejectsBadOptions) {
    PowerAmplifier::Options opts;
    opts.vdd = 0.0;
    EXPECT_THROW(PowerAmplifier{opts}, std::invalid_argument);
    PowerAmplifier::Options off_bias;
    off_bias.bias_v = 0.1;  // below threshold: driver off
    EXPECT_THROW(PowerAmplifier{off_bias}, std::invalid_argument);
}

// --- transmitter ---------------------------------------------------------------

TEST(Transmitter, OokSilentOnZeroBits) {
    const UwbTransmitter tx{PowerAmplifier{}};
    const auto obs =
        tx.transmit_block(nominal_350nm(), alternating(), all_ones());
    ASSERT_EQ(obs.size(), 128u);
    for (std::size_t i = 0; i < 128; ++i) {
        EXPECT_EQ(obs[i].transmitted, i % 2 == 0);
        if (!obs[i].transmitted) {
            EXPECT_EQ(obs[i].amplitude_v, 0.0);
        }
    }
}

TEST(Transmitter, TrojanFreeHasUniformPulses) {
    const UwbTransmitter tx{PowerAmplifier{}};
    EXPECT_FALSE(tx.has_trojan());
    const auto obs = tx.transmit_block(nominal_350nm(), all_ones(), all_ones());
    for (std::size_t i = 1; i < 128; ++i) {
        EXPECT_DOUBLE_EQ(obs[i].amplitude_v, obs[0].amplitude_v);
        EXPECT_DOUBLE_EQ(obs[i].frequency_ghz, obs[0].frequency_ghz);
    }
}

TEST(Transmitter, AmplitudeTrojanModulatesOnlyZeroKeyBits) {
    const AmplitudeLeakTrojan trojan(0.2);
    const UwbTransmitter tx{PowerAmplifier{}, &trojan};
    EXPECT_TRUE(tx.has_trojan());
    std::array<bool, 128> key{};
    key.fill(true);
    key[5] = false;
    key[77] = false;
    const auto obs = tx.transmit_block(nominal_350nm(), all_ones(), key);
    const double base = obs[0].amplitude_v;
    for (std::size_t i = 0; i < 128; ++i) {
        if (i == 5 || i == 77) {
            EXPECT_NEAR(obs[i].amplitude_v, base * 1.2, 1e-9);
        } else {
            EXPECT_DOUBLE_EQ(obs[i].amplitude_v, base);
        }
    }
}

TEST(Transmitter, FrequencyTrojanShiftsOnlyZeroKeyBits) {
    const FrequencyLeakTrojan trojan(0.5);
    const UwbTransmitter tx{PowerAmplifier{}, &trojan};
    std::array<bool, 128> key = all_ones();
    key[10] = false;
    const auto obs = tx.transmit_block(nominal_350nm(), all_ones(), key);
    EXPECT_NEAR(obs[10].frequency_ghz - obs[11].frequency_ghz, 0.5, 1e-9);
}

// --- power meter ------------------------------------------------------------------

TEST(Meter, RejectsBadOptions) {
    PowerMeter::Options opts;
    opts.bandwidth_ghz = 0.0;
    EXPECT_THROW(PowerMeter{opts}, std::invalid_argument);
    PowerMeter::Options neg_noise;
    neg_noise.noise_sigma_db = -0.1;
    EXPECT_THROW(PowerMeter{neg_noise}, std::invalid_argument);
}

TEST(Meter, BandResponsePeaksAtCenter) {
    PowerMeter::Options opts;
    opts.center_freq_ghz = 4.0;
    opts.bandwidth_ghz = 0.5;
    const PowerMeter meter(opts);
    EXPECT_DOUBLE_EQ(meter.band_response(4.0), 1.0);
    EXPECT_LT(meter.band_response(5.0), meter.band_response(4.2));
    EXPECT_NEAR(meter.band_response(4.5), std::exp(-0.5), 1e-12);
}

TEST(Meter, PowerScalesWithAmplitudeSquared) {
    const PowerMeter meter;
    std::vector<PulseObservation> block(128);
    block[0] = {true, 1.0, 4.0, 0.5};
    const double p1 = meter.average_power_mw(block);
    block[0].amplitude_v = 2.0;
    const double p2 = meter.average_power_mw(block);
    EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(Meter, PowerScalesWithPulseCount) {
    const PowerMeter meter;
    std::vector<PulseObservation> one(128);
    one[0] = {true, 1.0, 4.0, 0.5};
    std::vector<PulseObservation> four(128);
    for (int i = 0; i < 4; ++i) four[i] = {true, 1.0, 4.0, 0.5};
    EXPECT_NEAR(meter.average_power_mw(four) / meter.average_power_mw(one), 4.0, 1e-9);
}

TEST(Meter, OutOfBandPulsesAttenuated) {
    PowerMeter::Options opts;
    opts.center_freq_ghz = 4.0;
    opts.bandwidth_ghz = 0.4;
    const PowerMeter meter(opts);
    std::vector<PulseObservation> in_band(128);
    in_band[0] = {true, 1.0, 4.0, 0.5};
    std::vector<PulseObservation> off_band(128);
    off_band[0] = {true, 1.0, 5.0, 0.5};
    EXPECT_GT(meter.average_power_mw(in_band), meter.average_power_mw(off_band));
}

TEST(Meter, EmptyBlockThrows) {
    const PowerMeter meter;
    EXPECT_THROW((void)meter.average_power_mw({}), std::invalid_argument);
}

TEST(Meter, NoiseFreeDbmIsDeterministic) {
    PowerMeter::Options opts;  // zero noise by default
    const PowerMeter meter(opts);
    std::vector<PulseObservation> block(128);
    block[0] = {true, 1.0, 4.0, 0.5};
    Rng rng(1);
    const double a = meter.average_power_dbm(block, rng);
    const double b = meter.average_power_dbm(block, rng);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Meter, NoiseSpreadMatchesSigma) {
    PowerMeter::Options opts;
    opts.noise_sigma_db = 0.1;
    const PowerMeter meter(opts);
    std::vector<PulseObservation> block(128);
    block[0] = {true, 1.0, 4.0, 0.5};
    Rng rng(2);
    double sum = 0.0, sum2 = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const double v = meter.average_power_dbm(block, rng);
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double sd = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(sd, 0.1, 0.01);
}

TEST(Meter, AmplitudeTrojanRaisesBlockPower) {
    const AmplitudeLeakTrojan trojan(0.2);
    const UwbTransmitter clean{PowerAmplifier{}};
    const UwbTransmitter infested{PowerAmplifier{}, &trojan};
    const PowerMeter meter;
    std::array<bool, 128> key{};  // all zero key bits: every pulse modulated
    const auto obs_clean =
        clean.transmit_block(nominal_350nm(), all_ones(), key);
    const auto obs_bad =
        infested.transmit_block(nominal_350nm(), all_ones(), key);
    const double gain_db = mw_to_dbm(meter.average_power_mw(obs_bad)) -
                           mw_to_dbm(meter.average_power_mw(obs_clean));
    EXPECT_NEAR(gain_db, 20.0 * std::log10(1.2), 1e-9);
}

}  // namespace
