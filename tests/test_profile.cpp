/// Tests for the htd_profile core (tools/htd_profile/profile.hpp): trace
/// validation against the htd.trace.v1 shape, profile loading from all
/// three accepted document kinds, contribution-ranked diffing, and the
/// regression-attribution acceptance case — a kernel-eval work-counter
/// regression in the 200-sample AdaptiveKdeBuild BENCH_micro point must
/// surface as the top-ranked work row, with the counter value taken from a
/// real AdaptiveKde build rather than a synthetic constant.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "obs/obs.hpp"
#include "profile.hpp"
#include "rng/rng.hpp"
#include "stats/kde.hpp"

namespace {

using htd::io::Json;
using htd::profile::DiffEntry;
using htd::profile::ProfileData;
using htd::profile::ProfileDiff;
using htd::profile::TraceCheck;

Json span_event(const std::string& name, double tid, double ts, double dur,
                double id, double parent, double depth) {
    Json event = Json::object();
    event.set("ph", "X");
    event.set("cat", "htd");
    event.set("name", name);
    event.set("pid", 1.0);
    event.set("tid", tid);
    event.set("ts", ts);
    event.set("dur", dur);
    Json args = Json::object();
    args.set("id", id);
    args.set("parent", parent);
    args.set("depth", depth);
    event.set("args", std::move(args));
    return event;
}

/// A two-span well-formed trace plus any extra events the test wants to
/// smuggle in (io::Json exposes no mutable at(), so the document is built
/// in one shot).
Json make_trace(std::vector<Json> extra_events = {},
                const std::string& schema = "htd.trace.v1") {
    Json events = Json::array();
    events.push_back(span_event("stage.outer", 1, 0, 5, 1, 0, 0));
    events.push_back(span_event("stage.inner", 1, 1, 2, 2, 1, 1));
    for (Json& event : extra_events) events.push_back(std::move(event));
    Json work = Json::object();
    work.set("work.stage.units", 128.0);
    Json other = Json::object();
    other.set("schema", schema);
    other.set("work", std::move(work));
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("otherData", std::move(other));
    return doc;
}

TEST(ProfileCheckTrace, AcceptsMinimalWellFormedTrace) {
    const TraceCheck check = htd::profile::check_trace(make_trace());
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
    EXPECT_EQ(check.span_events, 2u);
    ASSERT_EQ(check.span_names.size(), 2u);
    EXPECT_EQ(check.span_names[0], "stage.inner");
    EXPECT_EQ(check.span_names[1], "stage.outer");
    EXPECT_EQ(check.work.at("work.stage.units"), 128.0);
}

TEST(ProfileCheckTrace, RejectsMissingTraceEvents) {
    const TraceCheck check = htd::profile::check_trace(Json::object());
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.errors.empty());
    EXPECT_NE(check.errors.front().find("traceEvents"), std::string::npos);
}

TEST(ProfileCheckTrace, RejectsWrongSchemaTag) {
    EXPECT_FALSE(htd::profile::check_trace(make_trace({}, "htd.trace.v0")).ok);
}

TEST(ProfileCheckTrace, RejectsSpanEventMissingDuration) {
    // Hand-build an X event without a dur field.
    Json broken = Json::object();
    broken.set("ph", "X");
    broken.set("name", "stage.broken");
    broken.set("pid", 1.0);
    broken.set("tid", 1.0);
    broken.set("ts", 0.0);
    Json args = Json::object();
    args.set("id", 3.0);
    args.set("parent", 0.0);
    args.set("depth", 0.0);
    broken.set("args", std::move(args));
    std::vector<Json> extra;
    extra.push_back(std::move(broken));
    EXPECT_FALSE(htd::profile::check_trace(make_trace(std::move(extra))).ok);
}

TEST(ProfileCheckTrace, RejectsNegativeTimestamp) {
    std::vector<Json> extra;
    extra.push_back(span_event("stage.bad", 1, -1, 1, 3, 0, 0));
    EXPECT_FALSE(htd::profile::check_trace(make_trace(std::move(extra))).ok);
}

TEST(ProfileCheckTrace, RejectsCrossThreadParentLink) {
    // Parent id 1 lives on tid 1; a child claiming it from tid 2 breaks
    // the nesting guarantee.
    std::vector<Json> extra;
    extra.push_back(span_event("stage.stray", 2, 0, 1, 3, 1, 1));
    const TraceCheck check = htd::profile::check_trace(make_trace(std::move(extra)));
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.errors.empty());
    EXPECT_NE(check.errors.front().find("another thread"), std::string::npos);
}

TEST(ProfileCheckTrace, RejectsUnknownPhase) {
    Json begin = span_event("stage.begin_only", 1, 0, 1, 3, 0, 0);
    begin.set("ph", "B");
    std::vector<Json> extra;
    extra.push_back(std::move(begin));
    EXPECT_FALSE(htd::profile::check_trace(make_trace(std::move(extra))).ok);
}

TEST(ProfileLoad, AggregatesTraceStagesByName) {
    std::vector<Json> extra;
    extra.push_back(span_event("stage.inner", 1, 4, 3, 3, 1, 1));
    const ProfileData data =
        htd::profile::load_profile(make_trace(std::move(extra)));
    EXPECT_EQ(data.kind, "trace");
    EXPECT_EQ(data.stages.at("stage.inner").wall_us, 5.0);  // 2 + 3
    EXPECT_EQ(data.stages.at("stage.inner").count, 2.0);
    EXPECT_EQ(data.stages.at("stage.outer").wall_us, 5.0);
    EXPECT_EQ(data.work.at("work.stage.units"), 128.0);
}

TEST(ProfileLoad, ReadsRunReportSpansAndWorkMetrics) {
    Json span = Json::object();
    span.set("name", "kde.adaptive_build");
    span.set("wall_ns", 4000.0);
    span.set("cpu_ns", 3000.0);
    Json spans = Json::array();
    spans.push_back(std::move(span));
    Json work = Json::object();
    work.set("work.kde.kernel_evals", 40000.0);
    Json metrics = Json::object();
    metrics.set("work", std::move(work));
    Json observability = Json::object();
    observability.set("spans", std::move(spans));
    observability.set("metrics", std::move(metrics));
    Json doc = Json::object();
    doc.set("observability", std::move(observability));

    const ProfileData data = htd::profile::load_profile(doc);
    EXPECT_EQ(data.kind, "run_report");
    EXPECT_EQ(data.stages.at("kde.adaptive_build").wall_us, 4.0);
    EXPECT_EQ(data.stages.at("kde.adaptive_build").cpu_us, 3.0);
    EXPECT_EQ(data.work.at("work.kde.kernel_evals"), 40000.0);
}

TEST(ProfileLoad, ReadsBenchResultsAndWorkProfile) {
    Json row = Json::object();
    row.set("name", "AdaptiveKdeBuild/200");
    row.set("real_ns_per_iter", 250000.0);
    row.set("cpu_ns_per_iter", 240000.0);
    row.set("iterations", 64.0);
    Json results = Json::array();
    results.push_back(std::move(row));
    Json work = Json::object();
    work.set("AdaptiveKdeBuild/200:work.kde.kernel_evals", 40000.0);
    Json doc = Json::object();
    doc.set("results", std::move(results));
    doc.set("work_profile", std::move(work));

    const ProfileData data = htd::profile::load_profile(doc);
    EXPECT_EQ(data.kind, "bench");
    EXPECT_EQ(data.stages.at("AdaptiveKdeBuild/200").wall_us, 250.0);
    EXPECT_EQ(data.stages.at("AdaptiveKdeBuild/200").count, 64.0);
    EXPECT_EQ(data.work.at("AdaptiveKdeBuild/200:work.kde.kernel_evals"), 40000.0);
}

TEST(ProfileLoad, ThrowsOnUnrecognizedDocument) {
    Json doc = Json::object();
    doc.set("something_else", 1.0);
    EXPECT_THROW((void)htd::profile::load_profile(doc), std::invalid_argument);
    EXPECT_THROW((void)htd::profile::load_profile(Json(1.0)), std::invalid_argument);
}

ProfileData with_work(std::map<std::string, double> work) {
    ProfileData data;
    data.kind = "bench";
    data.work = std::move(work);
    return data;
}

TEST(ProfileDiffing, RanksByAbsoluteDeltaWithNormalizedShares) {
    const ProfileData a = with_work(
        {{"work.a.small", 100.0}, {"work.b.big", 1000.0}, {"work.c.same", 50.0}});
    const ProfileData b = with_work(
        {{"work.a.small", 150.0}, {"work.b.big", 1950.0}, {"work.c.same", 50.0}});
    const ProfileDiff diff = htd::profile::diff_profiles(a, b);
    ASSERT_EQ(diff.work.size(), 3u);
    EXPECT_EQ(diff.work[0].name, "work.b.big");  // |delta| 950
    EXPECT_EQ(diff.work[0].delta, 950.0);
    EXPECT_EQ(diff.work[1].name, "work.a.small");  // |delta| 50
    EXPECT_EQ(diff.work[2].name, "work.c.same");   // |delta| 0
    double total_share = 0.0;
    for (const DiffEntry& e : diff.work) total_share += e.share;
    EXPECT_NEAR(total_share, 1.0, 1e-12);
    EXPECT_EQ(diff.work[2].share, 0.0);
}

TEST(ProfileDiffing, IdenticalRunsFallBackToMagnitudeRanking) {
    const ProfileData a =
        with_work({{"work.minor.thing", 10.0}, {"work.major.thing", 9000.0}});
    const ProfileDiff diff = htd::profile::diff_profiles(a, a);
    ASSERT_EQ(diff.work.size(), 2u);
    EXPECT_EQ(diff.work[0].name, "work.major.thing");
    EXPECT_GT(diff.work[0].share, diff.work[1].share);
}

TEST(ProfileDiffing, TextRenderingHonorsTopN) {
    const ProfileData a = with_work(
        {{"work.a.x", 1.0}, {"work.b.x", 2.0}, {"work.c.x", 3.0}});
    ProfileData b = a;
    b.work["work.c.x"] = 30.0;
    const ProfileDiff diff = htd::profile::diff_profiles(a, b);
    const std::string all = htd::profile::diff_text(diff);
    EXPECT_NE(all.find("work.a.x"), std::string::npos);
    const std::string top = htd::profile::diff_text(diff, 1);
    EXPECT_NE(top.find("work.c.x"), std::string::npos);
    EXPECT_EQ(top.find("work.a.x"), std::string::npos);
}

/// The acceptance case from DESIGN.md §13: when the 200-sample adaptive-KDE
/// build does more kernel evaluations than the baseline, htd_profile must
/// rank that counter at the top of the work attribution. The baseline
/// counter value is measured from a real AdaptiveKde build (the same
/// instrumentation BENCH_micro's work_profile records), not hard-coded.
TEST(ProfileDiffing, KdeKernelEvalRegressionIsTopWorkContributor) {
    using htd::obs::Registry;
    Registry::global().configure(htd::obs::SinkKind::kJson);
    Registry::global().reset();
    htd::rng::Rng rng(1234);
    htd::linalg::Matrix cloud(200, 6);
    for (std::size_t r = 0; r < cloud.rows(); ++r) {
        for (std::size_t c = 0; c < cloud.cols(); ++c) {
            cloud(r, c) = rng.normal();
        }
    }
    const htd::stats::AdaptiveKde kde(cloud, 0.5);
    const double kernel_evals =
        Registry::global().work_value("work.kde.kernel_evals");
    Registry::global().configure(htd::obs::SinkKind::kOff);
    Registry::global().reset();
    EXPECT_EQ(kernel_evals, 200.0 * 200.0);  // pilot density: m x m kernel grid

    const std::string key = "AdaptiveKdeBuild/200:work.kde.kernel_evals";
    const ProfileData baseline = with_work({
        {key, kernel_evals},
        {"OneClassSvmFit/2000:work.svm.gram_cells", 4.0e6},
        {"KmmSolve/200:work.kmm.gram_cells", 6.0e4},
    });
    ProfileData candidate = baseline;
    candidate.work[key] = 2.0 * kernel_evals;  // an accidental second pass

    const ProfileDiff diff = htd::profile::diff_profiles(baseline, candidate);
    ASSERT_FALSE(diff.work.empty());
    EXPECT_EQ(diff.work[0].name, key);
    EXPECT_EQ(diff.work[0].delta, kernel_evals);
    EXPECT_NEAR(diff.work[0].share, 1.0, 1e-12);  // the only mover
}

}  // namespace
