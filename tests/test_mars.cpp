/// Tests for the MARS regression engine (the paper's g_j : m_p -> m_j).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ml/mars.hpp"
#include "rng/rng.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::BasisTerm;
using htd::ml::HingeFactor;
using htd::ml::Mars;
using htd::ml::MarsBank;
using htd::rng::Rng;

TEST(Hinge, EvaluatesBothSigns) {
    const HingeFactor pos{0, 2.0, true};
    const HingeFactor neg{0, 2.0, false};
    const double x_hi[] = {5.0};
    const double x_lo[] = {1.0};
    EXPECT_DOUBLE_EQ(pos.evaluate(x_hi), 3.0);
    EXPECT_DOUBLE_EQ(pos.evaluate(x_lo), 0.0);
    EXPECT_DOUBLE_EQ(neg.evaluate(x_hi), 0.0);
    EXPECT_DOUBLE_EQ(neg.evaluate(x_lo), 1.0);
}

TEST(Basis, InterceptIsOne) {
    const BasisTerm intercept;
    const double x[] = {42.0};
    EXPECT_DOUBLE_EQ(intercept.evaluate(x), 1.0);
    EXPECT_EQ(intercept.degree(), 0u);
    EXPECT_EQ(intercept.str(), "1");
}

TEST(Basis, ProductOfFactors) {
    BasisTerm term;
    term.factors.push_back({0, 1.0, true});
    term.factors.push_back({1, 0.0, false});
    const double x[] = {3.0, -2.0};
    EXPECT_DOUBLE_EQ(term.evaluate(x), 2.0 * 2.0);
    EXPECT_TRUE(term.uses_variable(0));
    EXPECT_TRUE(term.uses_variable(1));
    EXPECT_FALSE(term.uses_variable(2));
}

TEST(MarsFit, RejectsBadOptions) {
    Mars::Options opts;
    opts.max_terms = 0;
    EXPECT_THROW(Mars{opts}, std::invalid_argument);
    opts.max_terms = 5;
    opts.max_degree = 0;
    EXPECT_THROW(Mars{opts}, std::invalid_argument);
    opts.max_degree = 1;
    opts.penalty = -1.0;
    EXPECT_THROW(Mars{opts}, std::invalid_argument);
}

TEST(MarsFit, RejectsEmptyAndMismatched) {
    Mars m;
    EXPECT_THROW(m.fit(Matrix(), Vector()), std::invalid_argument);
    EXPECT_THROW(m.fit(Matrix(3, 1), Vector(2)), std::invalid_argument);
}

TEST(MarsFit, ThrowsBeforeFit) {
    const Mars m;
    EXPECT_THROW((void)m.predict(Vector{1.0}), std::logic_error);
}

TEST(MarsFit, FitsConstantFunction) {
    Matrix x(20, 1);
    Vector y(20, 7.0);
    for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
    Mars m;
    m.fit(x, y);
    EXPECT_NEAR(m.predict(Vector{10.5}), 7.0, 1e-9);
    EXPECT_NEAR(m.r_squared(), 1.0, 1e-9);
}

TEST(MarsFit, FitsLinearFunctionExactly) {
    Rng rng(1);
    Matrix x(60, 1);
    Vector y(60);
    for (std::size_t i = 0; i < 60; ++i) {
        x(i, 0) = rng.uniform(-3.0, 3.0);
        y[i] = 2.0 * x(i, 0) - 1.0;
    }
    Mars m;
    m.fit(x, y);
    EXPECT_NEAR(m.predict(Vector{0.5}), 0.0, 1e-6);
    EXPECT_NEAR(m.predict(Vector{2.0}), 3.0, 1e-6);
    EXPECT_GT(m.r_squared(), 0.999999);
}

TEST(MarsFit, RecoversSingleHinge) {
    // y = max(0, x - 1): MARS should place a knot near 1 and fit exactly.
    Matrix x(101, 1);
    Vector y(101);
    for (std::size_t i = 0; i <= 100; ++i) {
        const double xv = -2.0 + 0.05 * static_cast<double>(i);
        x(i, 0) = xv;
        y[i] = std::max(0.0, xv - 1.0);
    }
    Mars m;
    m.fit(x, y);
    EXPECT_NEAR(m.predict(Vector{-1.0}), 0.0, 1e-6);
    EXPECT_NEAR(m.predict(Vector{2.0}), 1.0, 1e-6);
    EXPECT_NEAR(m.predict(Vector{1.5}), 0.5, 1e-6);
}

TEST(MarsFit, FitsPiecewiseLinearVee) {
    // y = |x|: needs the mirrored hinge pair at 0.
    Matrix x(81, 1);
    Vector y(81);
    for (std::size_t i = 0; i <= 80; ++i) {
        const double xv = -2.0 + 0.05 * static_cast<double>(i);
        x(i, 0) = xv;
        y[i] = std::abs(xv);
    }
    Mars m;
    m.fit(x, y);
    EXPECT_NEAR(m.predict(Vector{-1.5}), 1.5, 1e-5);
    EXPECT_NEAR(m.predict(Vector{1.5}), 1.5, 1e-5);
    EXPECT_NEAR(m.predict(Vector{0.0}), 0.0, 0.05);
}

TEST(MarsFit, AdditiveTwoVariableFunction) {
    Rng rng(2);
    Matrix x(150, 2);
    Vector y(150);
    for (std::size_t i = 0; i < 150; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        x(i, 1) = rng.uniform(-2.0, 2.0);
        y[i] = 3.0 * x(i, 0) + std::max(0.0, x(i, 1)) + 0.5;
    }
    Mars::Options opts;
    opts.max_degree = 1;
    Mars m(opts);
    m.fit(x, y);
    EXPECT_GT(m.r_squared(), 0.999);
    EXPECT_NEAR(m.predict(Vector{1.0, -1.0}), 3.5, 0.05);
    EXPECT_NEAR(m.predict(Vector{1.0, 1.0}), 4.5, 0.05);
}

TEST(MarsFit, InteractionTermWhenAllowed) {
    Rng rng(3);
    Matrix x(200, 2);
    Vector y(200);
    for (std::size_t i = 0; i < 200; ++i) {
        x(i, 0) = rng.uniform(0.0, 2.0);
        x(i, 1) = rng.uniform(0.0, 2.0);
        y[i] = x(i, 0) * x(i, 1);
    }
    Mars::Options additive;
    additive.max_degree = 1;
    Mars m1(additive);
    m1.fit(x, y);

    Mars::Options inter;
    inter.max_degree = 2;
    Mars m2(inter);
    m2.fit(x, y);
    // The interaction-capable model fits the product better.
    EXPECT_GT(m2.r_squared(), m1.r_squared() - 1e-12);
    EXPECT_GT(m2.r_squared(), 0.97);
}

TEST(MarsFit, PruningReducesTermsOnNoisyData) {
    Rng rng(4);
    Matrix x(80, 1);
    Vector y(80);
    for (std::size_t i = 0; i < 80; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y[i] = x(i, 0) + rng.normal(0.0, 0.5);  // linear + noise
    }
    Mars::Options no_prune;
    no_prune.prune = false;
    Mars grown(no_prune);
    grown.fit(x, y);

    Mars pruned;  // default prunes
    pruned.fit(x, y);
    EXPECT_LE(pruned.terms().size(), grown.terms().size());
}

TEST(MarsFit, MaxTermsRespected) {
    Rng rng(5);
    Matrix x(100, 1);
    Vector y(100);
    for (std::size_t i = 0; i < 100; ++i) {
        x(i, 0) = rng.uniform(-3.0, 3.0);
        y[i] = std::sin(x(i, 0));
    }
    Mars::Options opts;
    opts.max_terms = 5;
    opts.prune = false;
    Mars m(opts);
    m.fit(x, y);
    EXPECT_LE(m.terms().size(), 5u);
}

TEST(MarsFit, ExtrapolatesLinearly) {
    // Trained on [0, 1]; prediction at 2 continues the edge slope instead of
    // exploding — the property the pipeline relies on for the process shift.
    Matrix x(51, 1);
    Vector y(51);
    for (std::size_t i = 0; i <= 50; ++i) {
        x(i, 0) = 0.02 * static_cast<double>(i);
        y[i] = 3.0 * x(i, 0);
    }
    Mars m;
    m.fit(x, y);
    EXPECT_NEAR(m.predict(Vector{2.0}), 6.0, 0.05);
    EXPECT_NEAR(m.predict(Vector{-1.0}), -3.0, 0.05);
}

TEST(MarsFit, PredictBatchMatchesScalar) {
    Rng rng(6);
    Matrix x(50, 2);
    Vector y(50);
    for (std::size_t i = 0; i < 50; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = rng.normal();
        y[i] = x(i, 0) - x(i, 1);
    }
    Mars m;
    m.fit(x, y);
    const Vector batch = m.predict_batch(x);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(batch[i], m.predict(x.row(i)));
    }
}

TEST(MarsFit, KnotThinningStillFits) {
    Rng rng(7);
    Matrix x(300, 1);
    Vector y(300);
    for (std::size_t i = 0; i < 300; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y[i] = std::max(0.0, x(i, 0));
    }
    Mars::Options opts;
    opts.max_knots_per_variable = 20;
    Mars m(opts);
    m.fit(x, y);
    EXPECT_GT(m.r_squared(), 0.99);
}

// --- MarsBank ------------------------------------------------------------------

TEST(MarsBankTest, FitsMultipleOutputs) {
    Rng rng(8);
    Matrix x(100, 1);
    Matrix y(100, 3);
    for (std::size_t i = 0; i < 100; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y(i, 0) = 2.0 * x(i, 0);
        y(i, 1) = -x(i, 0) + 1.0;
        y(i, 2) = std::max(0.0, x(i, 0));
    }
    MarsBank bank;
    bank.fit(x, y);
    ASSERT_EQ(bank.output_dim(), 3u);
    const Vector pred = bank.predict(Vector{1.0});
    EXPECT_NEAR(pred[0], 2.0, 1e-5);
    EXPECT_NEAR(pred[1], 0.0, 1e-5);
    EXPECT_NEAR(pred[2], 1.0, 1e-5);
}

TEST(MarsBankTest, PredictBatchShape) {
    Rng rng(9);
    Matrix x(40, 2);
    Matrix y(40, 2);
    for (std::size_t i = 0; i < 40; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = rng.normal();
        y(i, 0) = x(i, 0);
        y(i, 1) = x(i, 1);
    }
    MarsBank bank;
    bank.fit(x, y);
    const Matrix out = bank.predict_batch(x);
    EXPECT_EQ(out.rows(), 40u);
    EXPECT_EQ(out.cols(), 2u);
}

TEST(MarsBankTest, RejectsMismatchedAndUnfitted) {
    MarsBank bank;
    EXPECT_THROW(bank.fit(Matrix(3, 1), Matrix(4, 2)), std::invalid_argument);
    EXPECT_THROW((void)bank.predict(Vector{1.0}), std::logic_error);
}

/// Property: R^2 on exactly representable piecewise-linear targets is ~1 for
/// a range of knot positions.
class MarsKnotSweep : public ::testing::TestWithParam<double> {};

TEST_P(MarsKnotSweep, RecoversHingeAtAnyKnot) {
    const double knot = GetParam();
    Matrix x(121, 1);
    Vector y(121);
    for (std::size_t i = 0; i <= 120; ++i) {
        const double xv = -3.0 + 0.05 * static_cast<double>(i);
        x(i, 0) = xv;
        y[i] = 2.0 * std::max(0.0, xv - knot) + 1.0;
    }
    Mars m;
    m.fit(x, y);
    EXPECT_GT(m.r_squared(), 0.9999);
}

INSTANTIATE_TEST_SUITE_P(Knots, MarsKnotSweep,
                         ::testing::Values(-2.0, -1.0, 0.0, 0.5, 1.5, 2.5));

}  // namespace
