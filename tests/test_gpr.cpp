/// Tests for the Gaussian-process regressor and bank.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ml/gpr.hpp"
#include "rng/rng.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::GaussianProcessRegressor;
using htd::ml::GprBank;
using htd::rng::Rng;

TEST(Gpr, RejectsBadOptions) {
    GaussianProcessRegressor::Options opts;
    opts.noise_fraction = -1.0;
    EXPECT_THROW(GaussianProcessRegressor{opts}, std::invalid_argument);
}

TEST(Gpr, RejectsDegenerateFit) {
    GaussianProcessRegressor gpr;
    EXPECT_THROW(gpr.fit(Matrix(1, 1, 0.0), Vector(1)), std::invalid_argument);
    EXPECT_THROW(gpr.fit(Matrix(4, 1), Vector(3)), std::invalid_argument);
    EXPECT_THROW((void)gpr.predict(Vector{0.0}), std::logic_error);
}

TEST(Gpr, InterpolatesTrainingPointsWithSmallNoise) {
    Rng rng(1);
    Matrix x(30, 1);
    Vector y(30);
    for (std::size_t i = 0; i < 30; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y[i] = std::sin(2.0 * x(i, 0));
    }
    GaussianProcessRegressor gpr;
    gpr.fit(x, y);
    EXPECT_GT(gpr.r_squared(), 0.999);
    for (std::size_t i = 0; i < 30; ++i) {
        EXPECT_NEAR(gpr.predict(x.row(i)), y[i], 0.01);
    }
}

TEST(Gpr, SmoothInterpolationBetweenPoints) {
    Matrix x(5, 1);
    Vector y(5);
    for (std::size_t i = 0; i < 5; ++i) {
        x(i, 0) = static_cast<double>(i);
        y[i] = static_cast<double>(i) * 2.0;  // linear
    }
    GaussianProcessRegressor gpr;
    gpr.fit(x, y);
    EXPECT_NEAR(gpr.predict(Vector{1.5}), 3.0, 0.3);
}

TEST(Gpr, VarianceGrowsAwayFromData) {
    Rng rng(2);
    Matrix x(40, 1);
    Vector y(40);
    for (std::size_t i = 0; i < 40; ++i) {
        x(i, 0) = rng.uniform(-1.0, 1.0);
        y[i] = x(i, 0);
    }
    GaussianProcessRegressor gpr;
    gpr.fit(x, y);
    const auto near = gpr.predict_with_variance(Vector{0.0});
    const auto far = gpr.predict_with_variance(Vector{8.0});
    EXPECT_LT(near.variance, far.variance);
    EXPECT_GE(near.variance, 0.0);
}

TEST(Gpr, RevertsToMeanFarFromData) {
    Rng rng(3);
    Matrix x(40, 1);
    Vector y(40);
    double mean = 0.0;
    for (std::size_t i = 0; i < 40; ++i) {
        x(i, 0) = rng.uniform(-1.0, 1.0);
        y[i] = 5.0 + x(i, 0);
        mean += y[i];
    }
    mean /= 40.0;
    GaussianProcessRegressor gpr;
    gpr.fit(x, y);
    EXPECT_NEAR(gpr.predict(Vector{50.0}), mean, 0.2);
}

TEST(Gpr, NoisyDataSmoothedWithLargerNoiseFraction) {
    Rng rng(4);
    Matrix x(80, 1);
    Vector y(80);
    for (std::size_t i = 0; i < 80; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y[i] = x(i, 0) + rng.normal(0.0, 0.3);
    }
    GaussianProcessRegressor::Options smooth;
    smooth.noise_fraction = 0.1;
    GaussianProcessRegressor gpr(smooth);
    gpr.fit(x, y);
    // The smoothed fit tracks the underlying line, not the noise.
    EXPECT_NEAR(gpr.predict(Vector{1.0}), 1.0, 0.25);
    EXPECT_LT(gpr.r_squared(), 0.999);  // does not chase the noise exactly
}

TEST(Gpr, ExplicitLengthScaleRespected) {
    GaussianProcessRegressor::Options opts;
    opts.length_scale = 2.5;
    GaussianProcessRegressor gpr(opts);
    Rng rng(5);
    Matrix x(20, 2);
    Vector y(20);
    for (std::size_t i = 0; i < 20; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = rng.normal();
        y[i] = x(i, 0);
    }
    gpr.fit(x, y);
    EXPECT_DOUBLE_EQ(gpr.effective_length_scale(), 2.5);
}

TEST(GprBankTest, MultiOutputAndValidation) {
    Rng rng(6);
    Matrix x(50, 1);
    Matrix y(50, 2);
    for (std::size_t i = 0; i < 50; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y(i, 0) = 3.0 * x(i, 0);
        y(i, 1) = -x(i, 0) + 1.0;
    }
    GprBank bank;
    EXPECT_THROW(bank.fit(Matrix(3, 1), Matrix(4, 2)), std::invalid_argument);
    EXPECT_THROW((void)bank.predict(Vector{0.0}), std::logic_error);
    bank.fit(x, y);
    ASSERT_EQ(bank.output_dim(), 2u);
    const Vector pred = bank.predict(Vector{1.0});
    EXPECT_NEAR(pred[0], 3.0, 0.1);
    EXPECT_NEAR(pred[1], 0.0, 0.1);
    const Matrix batch = bank.predict_batch(x);
    EXPECT_EQ(batch.rows(), 50u);
    EXPECT_EQ(batch.cols(), 2u);
}

}  // namespace
