/// Tests for kernel mean matching and the kernel-mean-shift calibrator
/// (the paper's Section 2.4 covariate-shift machinery).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ml/kmm.hpp"
#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::ml::KernelMeanMatching;
using htd::ml::KernelMeanShiftCalibrator;
using htd::ml::project_box_sum;
using htd::rng::Rng;

Matrix cloud(Rng& rng, std::size_t n, std::size_t d, double mean, double sd) {
    Matrix data(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) data(r, c) = rng.normal(mean, sd);
    return data;
}

// --- projection ------------------------------------------------------------------

TEST(ProjectBoxSum, NoOpWhenAlreadyFeasible) {
    const Vector v{0.5, 0.5};
    const Vector p = project_box_sum(v, 1.0, 0.5, 2.0);
    EXPECT_NEAR(p[0], 0.5, 1e-9);
    EXPECT_NEAR(p[1], 0.5, 1e-9);
}

TEST(ProjectBoxSum, ClipsToBox) {
    const Vector v{-1.0, 2.0};
    const Vector p = project_box_sum(v, 1.0, 0.0, 2.0);
    EXPECT_GE(p[0], 0.0);
    EXPECT_LE(p[1], 1.0);
}

TEST(ProjectBoxSum, RaisesSumToLowerBound) {
    const Vector v{0.0, 0.0, 0.0};
    const Vector p = project_box_sum(v, 1.0, 1.5, 3.0);
    EXPECT_NEAR(p.sum(), 1.5, 1e-6);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_GE(p[i], 0.0);
        EXPECT_LE(p[i], 1.0);
    }
}

TEST(ProjectBoxSum, LowersSumToUpperBound) {
    const Vector v{1.0, 1.0, 1.0};
    const Vector p = project_box_sum(v, 1.0, 0.0, 1.2);
    EXPECT_NEAR(p.sum(), 1.2, 1e-6);
}

TEST(ProjectBoxSum, UniformShiftPreservesOrdering) {
    const Vector v{0.1, 0.6, 0.3};
    const Vector p = project_box_sum(v, 1.0, 2.0, 2.5);
    EXPECT_LE(p[0], p[2]);
    EXPECT_LE(p[2], p[1]);
}

TEST(ProjectBoxSum, RejectsEmptyFeasibleSet) {
    const Vector v{0.5, 0.5};
    EXPECT_THROW((void)project_box_sum(v, 1.0, 3.0, 4.0), std::invalid_argument);
    EXPECT_THROW((void)project_box_sum(v, 0.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)project_box_sum(v, 1.0, 2.0, 1.0), std::invalid_argument);
}

// --- KMM -----------------------------------------------------------------------------

TEST(Kmm, RejectsBadOptions) {
    KernelMeanMatching::Options opts;
    opts.weight_bound = 0.0;
    EXPECT_THROW(KernelMeanMatching{opts}, std::invalid_argument);
    opts.weight_bound = 10.0;
    opts.max_iterations = 0;
    EXPECT_THROW(KernelMeanMatching{opts}, std::invalid_argument);
}

TEST(Kmm, RejectsEmptyOrMismatched) {
    const KernelMeanMatching kmm;
    Rng rng(1);
    const Matrix a = cloud(rng, 10, 2, 0.0, 1.0);
    EXPECT_THROW((void)kmm.solve(Matrix(), a), std::invalid_argument);
    EXPECT_THROW((void)kmm.solve(a, Matrix()), std::invalid_argument);
    const Matrix b = cloud(rng, 10, 3, 0.0, 1.0);
    EXPECT_THROW((void)kmm.solve(a, b), std::invalid_argument);
}

TEST(Kmm, IdenticalDistributionsGiveNearUniformWeights) {
    Rng rng(2);
    const Matrix train = cloud(rng, 80, 1, 0.0, 1.0);
    const Matrix test = cloud(rng, 80, 1, 0.0, 1.0);
    const KernelMeanMatching kmm;
    const Vector beta = kmm.solve(train, test);
    ASSERT_EQ(beta.size(), 80u);
    EXPECT_NEAR(beta.mean(), 1.0, 0.7);
    // Weights are feasible.
    for (std::size_t i = 0; i < beta.size(); ++i) {
        EXPECT_GE(beta[i], 0.0);
        EXPECT_LE(beta[i], kmm.options().weight_bound);
    }
}

TEST(Kmm, ShiftedTestUpweightsNearbyTrainingSamples) {
    Rng rng(3);
    const Matrix train = cloud(rng, 100, 1, 0.0, 1.0);
    const Matrix test = cloud(rng, 100, 1, 1.0, 0.5);
    const KernelMeanMatching kmm;
    const Vector beta = kmm.solve(train, test);

    // beta-weighted training mean moves toward the test mean.
    double weighted = 0.0;
    for (std::size_t i = 0; i < 100; ++i) weighted += beta[i] * train(i, 0);
    weighted /= std::max(beta.sum(), 1e-12);
    const double plain_mean = htd::stats::column_means(train)[0];
    const double test_mean = htd::stats::column_means(test)[0];
    EXPECT_GT(weighted, plain_mean);
    EXPECT_NEAR(weighted, test_mean, 0.35);
}

TEST(Kmm, ObjectiveDecreasesFromUniform) {
    Rng rng(4);
    const Matrix train = cloud(rng, 60, 2, 0.0, 1.0);
    const Matrix test = cloud(rng, 60, 2, 0.8, 1.0);
    const KernelMeanMatching kmm;
    const Vector beta = kmm.solve(train, test);

    const double gamma = htd::ml::median_heuristic_gamma(train);
    const auto kernel = htd::ml::rbf_kernel(gamma);
    const Matrix k = htd::ml::gram_matrix(kernel, train);
    Vector kappa(60);
    for (std::size_t i = 0; i < 60; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < 60; ++j) acc += kernel(train.row_span(i), test.row_span(j));
        kappa[i] = acc;  // ntr == nte so the ratio factor is 1
    }
    const Vector uniform(60, 1.0);
    EXPECT_LE(KernelMeanMatching::objective(k, kappa, beta),
              KernelMeanMatching::objective(k, kappa, uniform) + 1e-9);
}

// --- calibrator ------------------------------------------------------------------------

TEST(Calibrator, AlignsMeansOfDisjointClouds) {
    Rng rng(5);
    const Matrix train = cloud(rng, 100, 1, 0.0, 1.0);
    const Matrix test = cloud(rng, 60, 1, 8.0, 0.4);  // far away, narrower
    const KernelMeanShiftCalibrator calibrator;
    const auto result = calibrator.calibrate(train, test);

    const double calibrated_mean = htd::stats::column_means(result.calibrated)[0];
    const double test_mean = htd::stats::column_means(test)[0];
    EXPECT_NEAR(calibrated_mean, test_mean, 0.5);
}

TEST(Calibrator, PreservesTrainingSpread) {
    Rng rng(6);
    const Matrix train = cloud(rng, 100, 1, 0.0, 2.0);
    const Matrix test = cloud(rng, 50, 1, 5.0, 0.3);
    const KernelMeanShiftCalibrator calibrator;
    const auto result = calibrator.calibrate(train, test);

    // The paper's point: m''_p keeps the wide Monte Carlo spread.
    const double calibrated_sd = htd::stats::column_stddevs(result.calibrated)[0];
    EXPECT_NEAR(calibrated_sd, 2.0, 0.2);
    EXPECT_GT(calibrated_sd, 3.0 * 0.3);
}

TEST(Calibrator, NearNoOpWhenAlreadyAligned) {
    Rng rng(7);
    const Matrix train = cloud(rng, 100, 2, 1.0, 1.0);
    const Matrix test = cloud(rng, 100, 2, 1.0, 1.0);
    const KernelMeanShiftCalibrator calibrator;
    const auto result = calibrator.calibrate(train, test);
    EXPECT_LT(result.total_shift.norm(), 0.5);
}

TEST(Calibrator, MultiDimensionalShiftRecovered) {
    Rng rng(8);
    const Matrix train = cloud(rng, 120, 3, 0.0, 1.0);
    Matrix test = cloud(rng, 80, 3, 0.0, 0.5);
    // Shift test by a known vector.
    const Vector delta{2.0, -3.0, 1.0};
    for (std::size_t r = 0; r < test.rows(); ++r) {
        auto row = test.row_span(r);
        for (std::size_t c = 0; c < 3; ++c) row[c] += delta[c];
    }
    const KernelMeanShiftCalibrator calibrator;
    const auto result = calibrator.calibrate(train, test);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(result.total_shift[c], delta[c], 0.4);
    }
}

TEST(Calibrator, RejectsBadInputs) {
    const KernelMeanShiftCalibrator calibrator;
    Rng rng(9);
    const Matrix a = cloud(rng, 10, 2, 0.0, 1.0);
    EXPECT_THROW((void)calibrator.calibrate(Matrix(), a), std::invalid_argument);
    const Matrix b = cloud(rng, 10, 1, 0.0, 1.0);
    EXPECT_THROW((void)calibrator.calibrate(a, b), std::invalid_argument);
}

TEST(Calibrator, ReportsWeightsAndIterations) {
    Rng rng(10);
    const Matrix train = cloud(rng, 50, 1, 0.0, 1.0);
    const Matrix test = cloud(rng, 50, 1, 4.0, 0.5);
    KernelMeanShiftCalibrator::Options opts;
    opts.max_shift_iterations = 50;
    const KernelMeanShiftCalibrator calibrator(opts);
    const auto result = calibrator.calibrate(train, test);
    EXPECT_EQ(result.weights.size(), 50u);
    EXPECT_GT(result.iterations, 0u);
    EXPECT_LE(result.iterations, 50u);
}

/// Property: calibration aligns means for a sweep of gap sizes.
class CalibratorGapSweep : public ::testing::TestWithParam<double> {};

TEST_P(CalibratorGapSweep, MeanGapClosed) {
    const double gap = GetParam();
    Rng rng(20 + static_cast<std::uint64_t>(gap * 10));
    const Matrix train = cloud(rng, 80, 1, 0.0, 1.0);
    const Matrix test = cloud(rng, 40, 1, gap, 0.4);
    const KernelMeanShiftCalibrator calibrator;
    const auto result = calibrator.calibrate(train, test);
    const double residual_gap = htd::stats::column_means(result.calibrated)[0] -
                                htd::stats::column_means(test)[0];
    EXPECT_LT(std::abs(residual_gap), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Gaps, CalibratorGapSweep,
                         ::testing::Values(0.5, 2.0, 5.0, 10.0, 20.0));

}  // namespace

// --- weighted resampling (appended) -------------------------------------------

namespace {

TEST(WeightedResample, FollowsWeights) {
    Rng rng(30);
    Matrix data(3, 1);
    data(0, 0) = 1.0;
    data(1, 0) = 2.0;
    data(2, 0) = 3.0;
    Vector w{0.0, 1.0, 3.0};
    const Matrix out = htd::ml::weighted_resample(data, w, 20000, rng);
    ASSERT_EQ(out.rows(), 20000u);
    std::size_t ones = 0, twos = 0, threes = 0;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        if (out(r, 0) == 1.0) ++ones;
        if (out(r, 0) == 2.0) ++twos;
        if (out(r, 0) == 3.0) ++threes;
    }
    EXPECT_EQ(ones, 0u);
    EXPECT_NEAR(static_cast<double>(twos) / 20000.0, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(threes) / 20000.0, 0.75, 0.02);
}

TEST(WeightedResample, RejectsBadInput) {
    Rng rng(31);
    Matrix data(2, 1, 1.0);
    EXPECT_THROW((void)htd::ml::weighted_resample(data, Vector(3), 5, rng),
                 std::invalid_argument);
    EXPECT_THROW((void)htd::ml::weighted_resample(data, Vector(2, 1.0), 0, rng),
                 std::invalid_argument);
}

}  // namespace
