/// Tests for tools/htd_lint: each rule trips on a seeded fixture, the
/// scanner ignores rule patterns inside comments / string literals, the
/// allowlist suppresses and reports stale entries, the --json schema is
/// stable, and — the self-test with teeth — the committed tree itself
/// lints clean under the committed allowlist, which is what keeps
/// `scripts/check.sh --analyze` green.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

using htd::io::Json;
using htd::lint::AllowEntry;
using htd::lint::Finding;
using htd::lint::Report;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
    std::vector<std::string> out;
    out.reserve(findings.size());
    for (const Finding& f : findings) out.push_back(f.rule);
    return out;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
    for (const Finding& f : findings) {
        if (f.rule == rule) return true;
    }
    return false;
}

// --- scanner ----------------------------------------------------------------

TEST(LintScanner, BlanksCommentsAndStrings) {
    const std::string src =
        "int a; // std::random_device in a comment\n"
        "/* std::cout in a block\n"
        "   comment */ int b;\n"
        "const char* s = \"std::random_device\";\n"
        "const char* r = R\"(std::random_device)\";\n";
    const std::string blanked = htd::lint::blank_noncode(src);
    EXPECT_EQ(blanked.find("random_device"), std::string::npos);
    EXPECT_EQ(blanked.find("cout"), std::string::npos);
    EXPECT_NE(blanked.find("int a;"), std::string::npos);
    EXPECT_NE(blanked.find("int b;"), std::string::npos);
    // Line structure preserved: same number of newlines.
    EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
              std::count(blanked.begin(), blanked.end(), '\n'));
}

TEST(LintScanner, PatternsInCommentsDoNotTrip) {
    const std::string src =
        "#pragma once\n"
        "namespace htd {\n"
        "// forbidden in a comment: std::mt19937 gen; std::cout << x;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/core/x.hpp", src).empty());
}

// --- individual rules -------------------------------------------------------

TEST(LintRules, RngSeedTripsOnRandomDeviceAndDefaultEngines) {
    const std::string src =
        "#include <random>\n"
        "void f() {\n"
        "    std::random_device rd;\n"
        "    std::mt19937 gen;\n"
        "    std::mt19937_64 seeded(42);\n"  // fine: explicit seed
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("bench/fixture.cpp", src);
    Report diag;
    diag.findings = findings;
    ASSERT_EQ(findings.size(), 2u) << htd::lint::report_text(diag);
    EXPECT_EQ(findings[0].rule, "rng-seed");
    EXPECT_EQ(findings[0].line, 3u);
    EXPECT_EQ(findings[1].rule, "rng-seed");
    EXPECT_EQ(findings[1].line, 4u);
}

TEST(LintRules, StdRandomInLibraryScopesToSrc) {
    const std::string src =
        "#include <random>\n"
        "void f(std::mt19937& gen) {\n"
        "    std::normal_distribution<double> d(0.0, 1.0);\n"
        "    (void)d(gen);\n"
        "}\n";
    // In src/ both the engine reference and the distribution are findings.
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/ml/x.cpp", src),
                         "std-random-in-library"));
    // Outside src/ (tests, bench) raw <random> is allowed when seeded.
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tests/x.cpp", src),
                          "std-random-in-library"));
    // src/rng/ implements the abstraction and is exempt.
    EXPECT_FALSE(has_rule(htd::lint::lint_source("src/rng/x.cpp", src),
                          "std-random-in-library"));
}

TEST(LintRules, RawNanCheckExemptsIngest) {
    const std::string src =
        "#include <cmath>\n"
        "bool f(double v) { return std::isfinite(v) && !std::isnan(v); }\n";
    const std::vector<Finding> in_lib =
        htd::lint::lint_source("src/stats/x.cpp", src);
    EXPECT_EQ(rules_of(in_lib),
              (std::vector<std::string>{"raw-nan-check", "raw-nan-check"}));
    EXPECT_TRUE(htd::lint::lint_source("src/core/ingest.cpp", src).empty());
    EXPECT_TRUE(htd::lint::lint_source("tools/x.cpp", src).empty());
}

TEST(LintRules, StdioInLibraryExemptsObs) {
    const std::string src =
        "#include <cstdio>\n"
        "#include <iostream>\n"
        "void f() {\n"
        "    std::cout << 1;\n"
        "    std::fprintf(stderr, \"x\");\n"
        "    char buf[8];\n"
        "    std::snprintf(buf, sizeof buf, \"y\");\n"  // not console output
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/ml/x.cpp", src);
    EXPECT_EQ(rules_of(findings),
              (std::vector<std::string>{"stdio-in-library", "stdio-in-library"}));
    EXPECT_TRUE(htd::lint::lint_source("src/obs/x.cpp", src).empty());
    EXPECT_TRUE(htd::lint::lint_source("tools/x.cpp", src).empty());
}

TEST(LintRules, HeaderHygieneRequiresPragmaOnceAndNamespace) {
    const std::string bad =
        "#ifndef X\n#define X\nnamespace other {}\n#endif\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/core/x.hpp", bad);
    EXPECT_EQ(rules_of(findings),
              (std::vector<std::string>{"header-hygiene", "header-hygiene"}));

    const std::string good =
        "#pragma once\n/// doc\nnamespace htd::core {}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/core/x.hpp", good).empty());
    // Sources and non-src headers are out of scope.
    EXPECT_TRUE(htd::lint::lint_source("tools/htd_lint/lint.hpp", bad).empty());
}

TEST(LintRules, StreamUncheckedWantsAnErrorCheckNearby) {
    const std::string unchecked =
        "#include <fstream>\n"
        "void f() {\n"
        "    std::ifstream in(\"x.csv\");\n"
        "    int y = 0;\n"
        "    (void)y;\n"
        "}\n";
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/io/x.cpp", unchecked),
                         "stream-unchecked"));

    const std::string checked =
        "#include <fstream>\n"
        "void f() {\n"
        "    std::ifstream in(\"x.csv\");\n"
        "    if (!in) return;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/io/x.cpp", checked).empty());

    const std::string is_open =
        "#include <fstream>\n"
        "void f() {\n"
        "    std::ofstream out(\"x.csv\");\n"
        "    if (!out.is_open()) return;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/io/x.cpp", is_open).empty());
}

// --- allowlist --------------------------------------------------------------

TEST(LintAllowlist, ParsesEntriesAndComments) {
    const std::vector<AllowEntry> entries = htd::lint::parse_allowlist(
        "# header comment\n"
        "\n"
        "raw-nan-check src/foo.cpp  # trailing comment\n"
        "* src/vendor/\n");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].rule, "raw-nan-check");
    EXPECT_EQ(entries[0].path_suffix, "src/foo.cpp");
    EXPECT_EQ(entries[1].rule, "*");
}

TEST(LintAllowlist, RejectsMalformedLines) {
    EXPECT_THROW((void)htd::lint::parse_allowlist("raw-nan-check\n"),
                 std::runtime_error);
    EXPECT_THROW((void)htd::lint::parse_allowlist("not-a-rule src/x.cpp\n"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)htd::lint::parse_allowlist("raw-nan-check src/x.cpp stray\n"),
        std::runtime_error);
}

// --- tree walk + report -----------------------------------------------------

class LintTreeTest : public ::testing::Test {
protected:
    void SetUp() override {
        root_ = fs::temp_directory_path() /
                ("htd_lint_test_" + std::to_string(::getpid()));
        fs::create_directories(root_ / "src" / "core");
        write("src/core/bad.cpp",
              "#include <random>\n"
              "void f() { std::random_device rd; (void)rd; }\n");
        write("src/core/good.hpp",
              "#pragma once\nnamespace htd::core { void g(); }\n");
    }
    void TearDown() override { fs::remove_all(root_); }

    void write(const std::string& rel, const std::string& contents) {
        std::ofstream out(root_ / rel);
        ASSERT_TRUE(out.is_open()) << rel;
        out << contents;
    }

    fs::path root_;
};

TEST_F(LintTreeTest, WalksTreeAndCountsFiles) {
    const Report report =
        htd::lint::lint_paths({(root_ / "src").string()}, {});
    EXPECT_EQ(report.files_checked, 2u);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "rng-seed");
    EXPECT_EQ(report.findings[0].line, 2u);
    EXPECT_FALSE(report.clean());
}

TEST_F(LintTreeTest, AllowlistSuppressesAndFlagsStaleEntries) {
    const std::vector<AllowEntry> allow = {
        {"rng-seed", "src/core/bad.cpp"},   // suppresses the finding
        {"rng-seed", "src/core/other.cpp"}  // stale: matches nothing
    };
    const Report report =
        htd::lint::lint_paths({(root_ / "src").string()}, allow);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.suppressed, 1u);
    ASSERT_EQ(report.unused_allow.size(), 1u);
    EXPECT_EQ(report.unused_allow[0].path_suffix, "src/core/other.cpp");
}

TEST_F(LintTreeTest, ThrowsOnMissingPath) {
    EXPECT_THROW(
        (void)htd::lint::lint_paths({(root_ / "nope").string()}, {}),
        std::runtime_error);
}

TEST_F(LintTreeTest, JsonReportSchema) {
    const Report report =
        htd::lint::lint_paths({(root_ / "src").string()}, {});
    const Json json = htd::lint::report_json(report);
    EXPECT_EQ(json.at("schema").str(), "htd_lint.v1");
    EXPECT_EQ(json.at("files_checked").number(), 2.0);
    EXPECT_EQ(json.at("suppressed").number(), 0.0);
    ASSERT_EQ(json.at("findings").size(), 1u);
    const Json& finding = json.at("findings").at(0);
    EXPECT_EQ(finding.at("rule").str(), "rng-seed");
    EXPECT_EQ(finding.at("line").number(), 2.0);
    EXPECT_FALSE(finding.at("file").str().empty());
    EXPECT_FALSE(finding.at("message").str().empty());
    EXPECT_EQ(json.at("unused_allowlist_entries").size(), 0u);
    // The JSON mode must round-trip through the strict parser.
    const Json reparsed = Json::parse(json.dump(2));
    EXPECT_EQ(reparsed.at("schema").str(), "htd_lint.v1");
}

TEST(LintReportText, RendersFileLineRuleAndSummary) {
    Report report;
    report.findings.push_back({"src/x.cpp", 7, "rng-seed", "message"});
    report.files_checked = 3;
    report.suppressed = 2;
    const std::string text = htd::lint::report_text(report);
    EXPECT_NE(text.find("src/x.cpp:7: [rng-seed] message"), std::string::npos);
    EXPECT_NE(text.find("3 files"), std::string::npos);
    EXPECT_NE(text.find("2 suppressed"), std::string::npos);
}

// --- the gate itself --------------------------------------------------------

// The committed tree lints clean under the committed allowlist, with no
// stale allowlist entries. This is exactly what `scripts/check.sh
// --analyze` enforces; failing here means a new invariant violation (or a
// rotted allowlist) is about to land.
TEST(LintGate, CommittedTreeIsCleanUnderCommittedAllowlist) {
    const fs::path repo(HTD_SOURCE_DIR);
    std::ifstream allow_in(repo / "tools" / "htd_lint" / "allowlist.txt");
    ASSERT_TRUE(allow_in.is_open());
    std::ostringstream buffer;
    buffer << allow_in.rdbuf();
    const std::vector<AllowEntry> allow =
        htd::lint::parse_allowlist(buffer.str());
    EXPECT_FALSE(allow.empty());

    std::vector<std::string> paths;
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
        paths.push_back((repo / dir).string());
    }
    const Report report = htd::lint::lint_paths(paths, allow);
    EXPECT_GT(report.files_checked, 100u);
    EXPECT_TRUE(report.clean()) << htd::lint::report_text(report);
    EXPECT_TRUE(report.unused_allow.empty()) << htd::lint::report_text(report);
    EXPECT_GT(report.suppressed, 0u);  // the allowlist is real, not decorative
}

}  // namespace
