/// Tests for tools/htd_lint: each rule trips on a seeded fixture, the
/// lexer-backed scanner ignores rule patterns inside comments / string
/// literals (including encoding-prefixed raw strings — the v1
/// regression), the four v4 determinism passes (global-mutable-state,
/// unordered-iteration-escape, rng-discipline, float-reduction-order)
/// fire on seeded positives and stay quiet on annotated/fixed negatives,
/// the include-graph layering pass rejects back-edges, cycles and
/// unmapped modules with exact diagnostics, the result-discard and
/// missing-nodiscard passes enforce the must-use contract, the analyzer
/// cache serves warm runs and misses on config edits, the report is
/// byte-identical across --jobs counts, the allowlist suppresses and
/// reports stale entries with justifications, the --json schema is
/// stable, and — the self-test with teeth — the committed tree itself
/// lints clean under the committed allowlist and layering spec, which is
/// what keeps `scripts/check.sh --analyze` green.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

using htd::io::Json;
using htd::lint::AllowEntry;
using htd::lint::Finding;
using htd::lint::LayerSpec;
using htd::lint::Options;
using htd::lint::Report;

const std::vector<AllowEntry> kNoAllow;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
    std::vector<std::string> out;
    out.reserve(findings.size());
    for (const Finding& f : findings) out.push_back(f.rule);
    return out;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
    for (const Finding& f : findings) {
        if (f.rule == rule) return true;
    }
    return false;
}

std::string dump_report(const Report& report) {
    return htd::lint::report_text(report);
}

// --- scanner ----------------------------------------------------------------

TEST(LintScanner, BlanksCommentsAndStrings) {
    const std::string src =
        "int a; // std::random_device in a comment\n"
        "/* std::cout in a block\n"
        "   comment */ int b;\n"
        "const char* s = \"std::random_device\";\n"
        "const char* r = R\"(std::random_device)\";\n";
    const std::string blanked = htd::lint::blank_noncode(src);
    EXPECT_EQ(blanked.find("random_device"), std::string::npos);
    EXPECT_EQ(blanked.find("cout"), std::string::npos);
    EXPECT_NE(blanked.find("int a;"), std::string::npos);
    EXPECT_NE(blanked.find("int b;"), std::string::npos);
    // Line structure preserved: same number of newlines.
    EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
              std::count(blanked.begin(), blanked.end(), '\n'));
}

TEST(LintScanner, PatternsInCommentsDoNotTrip) {
    const std::string src =
        "#pragma once\n"
        "namespace htd {\n"
        "// forbidden in a comment: std::mt19937 gen; std::cout << x;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/core/x.hpp", src).empty());
}

// Regression: the v1 character-state scanner treated `u8R"(`, `LR"(` etc.
// as ordinary quoted strings (the prefix made the R invisible), so a `)"`
// *inside* the raw delimiter ended the literal early and the tail of the
// string leaked into the scanned text. The lexer knows the full literal
// grammar.
TEST(LintScanner, EncodingPrefixedRawStringsBlankCorrectly) {
    const std::string src =
        "const char* a = u8R\"(std::random_device \" not code)\";\n"
        "const char* b = LR\"sep(std::cout << \"x\")sep\";\n"
        "void f() { std::random_device rd; (void)rd; }\n";
    const std::string blanked = htd::lint::blank_noncode(src);
    EXPECT_EQ(blanked.find("cout"), std::string::npos);
    // Only the real line-3 use survives blanking.
    const std::size_t first = blanked.find("random_device");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(blanked.find("random_device", first + 1), std::string::npos);

    const std::vector<Finding> findings =
        htd::lint::lint_source("bench/fixture.cpp", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "rng-seed");
    EXPECT_EQ(findings[0].line, 3u);
}

// --- individual rules -------------------------------------------------------

TEST(LintRules, RngSeedTripsOnRandomDeviceAndDefaultEngines) {
    const std::string src =
        "#include <random>\n"
        "void f() {\n"
        "    std::random_device rd;\n"
        "    std::mt19937 gen;\n"
        "    std::mt19937_64 seeded(42);\n"  // fine: explicit seed
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("bench/fixture.cpp", src);
    Report diag;
    diag.findings = findings;
    ASSERT_EQ(findings.size(), 2u) << dump_report(diag);
    EXPECT_EQ(findings[0].rule, "rng-seed");
    EXPECT_EQ(findings[0].line, 3u);
    EXPECT_EQ(findings[1].rule, "rng-seed");
    EXPECT_EQ(findings[1].line, 4u);
}

TEST(LintRules, StdRandomInLibraryScopesToSrc) {
    const std::string src =
        "#include <random>\n"
        "void f(std::mt19937& gen) {\n"
        "    std::normal_distribution<double> d(0.0, 1.0);\n"
        "    (void)d(gen);\n"
        "}\n";
    // In src/ both the engine reference and the distribution are findings.
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/ml/x.cpp", src),
                         "std-random-in-library"));
    // Outside src/ (tests, bench) raw <random> is allowed when seeded.
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tests/x.cpp", src),
                          "std-random-in-library"));
    // src/rng/ implements the abstraction and is exempt.
    EXPECT_FALSE(has_rule(htd::lint::lint_source("src/rng/x.cpp", src),
                          "std-random-in-library"));
}

TEST(LintRules, RawNanCheckExemptsIngest) {
    const std::string src =
        "#include <cmath>\n"
        "bool f(double v) { return std::isfinite(v) && !std::isnan(v); }\n";
    const std::vector<Finding> in_lib =
        htd::lint::lint_source("src/stats/x.cpp", src);
    EXPECT_EQ(rules_of(in_lib),
              (std::vector<std::string>{"raw-nan-check", "raw-nan-check"}));
    EXPECT_TRUE(htd::lint::lint_source("src/pipeline/ingest.cpp", src).empty());
    EXPECT_TRUE(htd::lint::lint_source("tools/x.cpp", src).empty());
}

TEST(LintRules, StdioInLibraryExemptsObs) {
    const std::string src =
        "#include <cstdio>\n"
        "#include <iostream>\n"
        "void f() {\n"
        "    std::cout << 1;\n"
        "    std::fprintf(stderr, \"x\");\n"
        "    char buf[8];\n"
        "    std::snprintf(buf, sizeof buf, \"y\");\n"  // not console output
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/ml/x.cpp", src);
    EXPECT_EQ(rules_of(findings),
              (std::vector<std::string>{"stdio-in-library", "stdio-in-library"}));
    EXPECT_TRUE(htd::lint::lint_source("src/obs/x.cpp", src).empty());
    EXPECT_TRUE(htd::lint::lint_source("tools/x.cpp", src).empty());
}

TEST(LintRules, HeaderHygieneRequiresPragmaOnceAndNamespace) {
    const std::string bad =
        "#ifndef X\n#define X\nnamespace other {}\n#endif\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/core/x.hpp", bad);
    EXPECT_EQ(rules_of(findings),
              (std::vector<std::string>{"header-hygiene", "header-hygiene"}));

    const std::string good =
        "#pragma once\n/// doc\nnamespace htd::core {}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/core/x.hpp", good).empty());
    // Sources and non-src headers are out of scope.
    EXPECT_TRUE(htd::lint::lint_source("tools/htd_lint/lint.hpp", bad).empty());
}

TEST(LintRules, StreamUncheckedWantsAnErrorCheckNearby) {
    const std::string unchecked =
        "#include <fstream>\n"
        "void f() {\n"
        "    std::ifstream in(\"x.csv\");\n"
        "    int y = 0;\n"
        "    (void)y;\n"
        "}\n";
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/io/x.cpp", unchecked),
                         "stream-unchecked"));

    const std::string checked =
        "#include <fstream>\n"
        "void f() {\n"
        "    std::ifstream in(\"x.csv\");\n"
        "    if (!in) return;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/io/x.cpp", checked).empty());

    const std::string is_open =
        "#include <fstream>\n"
        "void f() {\n"
        "    std::ofstream out(\"x.csv\");\n"
        "    if (!out.is_open()) return;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/io/x.cpp", is_open).empty());
}

// --- missing-nodiscard ------------------------------------------------------

TEST(LintRules, WorkCounterNameEnforcesShapeInSrc) {
    // A literal work_add name must be work.<stage>.<quantity>.
    const std::string good =
        "void f(htd::obs::Registry& r) {\n"
        "    r.work_add(\"work.kde.kernel_evals\", 1.0);\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", good).empty());

    for (const char* bad_name :
         {"kde.kernel_evals",        // missing work. prefix
          "work.KDE.kernel_evals",   // uppercase segment
          "work.kde",                // too few segments
          "work.kde.kernel.evals",   // too many segments
          "work.kde.kernel-evals"})  // dash not in [a-z0-9_]
    {
        const std::string src = std::string("void f(htd::obs::Registry& r) {\n") +
                                "    r.work_add(\"" + bad_name + "\", 1.0);\n}\n";
        EXPECT_TRUE(has_rule(htd::lint::lint_source("src/stats/x.cpp", src),
                             "work-counter-name"))
            << bad_name;
    }

    // Computed names cannot be checked statically and must not trip.
    const std::string computed =
        "void f(htd::obs::Registry& r, const std::string& n) {\n"
        "    r.work_add(n, 1.0);\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", computed).empty());

    // The rule scopes to src/: bench/test/tool code may use ad-hoc names.
    const std::string bad =
        "void f(htd::obs::Registry& r) { r.work_add(\"evals\", 1.0); }\n";
    EXPECT_FALSE(has_rule(htd::lint::lint_source("bench/x.cpp", bad),
                          "work-counter-name"));
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tests/x.cpp", bad),
                          "work-counter-name"));
}

TEST(LintRules, WorkNamespaceIsReservedForWorkAdd) {
    const std::string sneaky =
        "void f(htd::obs::Registry& r) {\n"
        "    r.counter_add(\"work.kde.sneaky\", 1.0);\n"
        "    r.gauge_set(\"work.kde.level\", 1.0);\n"
        "    r.histogram_record(\"work.kde.lat\", 1.0);\n"
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/stats/x.cpp", sneaky);
    ASSERT_EQ(findings.size(), 3u);
    for (const Finding& f : findings) EXPECT_EQ(f.rule, "work-counter-name");

    // Non-work names through the other metric kinds stay clean.
    const std::string fine =
        "void f(htd::obs::Registry& r) {\n"
        "    r.counter_add(\"pipeline.devices\", 1.0);\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", fine).empty());
}

TEST(LintRules, ArtifactSchemaStringOnlyInDefiningHeader) {
    // A literal htd.boundary.* spelling forks the schema contract.
    const std::string fork =
        "bool ok(const std::string& s) {\n"
        "    return s == \"htd.boundary.v1\";\n"
        "}\n";
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/pipeline/report.cpp", fork),
                         "artifact-schema-version"));
    EXPECT_TRUE(has_rule(
        htd::lint::lint_source("tools/htd_score/main.cpp", fork),
        "artifact-schema-version"));

    // The defining header owns the literal; the linter spells it to find it.
    EXPECT_FALSE(has_rule(
        htd::lint::lint_source("src/pipeline/artifact.hpp", fork),
        "artifact-schema-version"));
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tools/htd_lint/lint.cpp", fork),
                          "artifact-schema-version"));

    // Comments may mention the schema; only string literals are gated. Other
    // schema families (htd.bscores.*) are not this rule's business, and
    // bench/test code is out of scope entirely.
    const std::string comment =
        "// serialized as an htd.boundary.v1 envelope\n"
        "int x = 0;\n";
    EXPECT_TRUE(
        htd::lint::lint_source("src/pipeline/report.cpp", comment).empty());
    const std::string other_schema =
        "const char* s = \"htd.bscores.v1\";\n";
    EXPECT_FALSE(has_rule(
        htd::lint::lint_source("tools/htd_score/main.cpp", other_schema),
        "artifact-schema-version"));
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tests/test_artifact.cpp", fork),
                          "artifact-schema-version"));
}

TEST(LintRules, EventKindNamesMustBeRegistered) {
    // A literal journal event kind outside obs::event_kinds() would throw
    // at append time — but only on the (possibly rare) emitting path.
    const std::string bad =
        "void f() {\n"
        "    htd::obs::Event ev(\"chip_zapped\");\n"
        "}\n";
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/pipeline/x.cpp", bad),
                         "event-kind-name"));
    EXPECT_TRUE(has_rule(
        htd::lint::lint_source("tools/htd_score/score_cli.cpp", bad),
        "event-kind-name"));

    // Registered kinds are clean, with or without a variable name, and the
    // finding names the typo'd kind.
    const std::string good =
        "void f() {\n"
        "    htd::obs::Event ev(\"chip_scored\");\n"
        "    journal.append(htd::obs::Event(\"boundary_fallback\"));\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/pipeline/x.cpp", good).empty());
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/pipeline/x.cpp", bad);
    ASSERT_FALSE(findings.empty());
    EXPECT_NE(findings[0].message.find("chip_zapped"), std::string::npos);

    // Computed kinds cannot be checked statically and must not trip.
    const std::string computed =
        "void f(const std::string& k) {\n"
        "    htd::obs::Event ev(k);\n"
        "}\n";
    EXPECT_TRUE(
        htd::lint::lint_source("src/pipeline/x.cpp", computed).empty());

    // Scope: src/ and tools/ are gated; the linter's own fixtures and
    // bench/test code are not.
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tools/htd_lint/x.cpp", bad),
                          "event-kind-name"));
    EXPECT_FALSE(has_rule(htd::lint::lint_source("bench/x.cpp", bad),
                          "event-kind-name"));
    EXPECT_FALSE(has_rule(htd::lint::lint_source("tests/x.cpp", bad),
                          "event-kind-name"));
}

TEST(LintNodiscard, PublicValueReturnsInHeadersMustBeMarked) {
    const std::string src =
        "#pragma once\n"
        "namespace htd::stats {\n"
        "class Health {\n"
        "public:\n"
        "    int count() const;\n"                // finding
        "    [[nodiscard]] int size() const;\n"   // marked: fine
        "    void reset();\n"                     // void: fine
        "    int& slot(int i);\n"                 // reference: fine
        "    Health() = default;\n"               // constructor: fine
        "    ~Health() = default;\n"              // destructor: fine
        "private:\n"
        "    int helper() const;\n"               // private: fine
        "};\n"
        "int free_count();\n"                     // finding
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/stats/health.hpp", src);
    ASSERT_EQ(rules_of(findings), (std::vector<std::string>{
                                      "missing-nodiscard", "missing-nodiscard"}))
        << [&] {
               Report d;
               d.findings = findings;
               return dump_report(d);
           }();
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_NE(findings[0].message.find("'count'"), std::string::npos);
    EXPECT_EQ(findings[1].line, 14u);
}

TEST(LintNodiscard, SourcesAndOutOfLineDefinitionsAreExempt) {
    // .cpp files declare no public surface; out-of-line definitions carry
    // the attribute on the in-class declaration.
    const std::string cpp =
        "#include \"stats/health.hpp\"\n"
        "namespace htd::stats {\n"
        "int Health::count() const { return 1; }\n"
        "static int local_helper() { return 2; }\n"
        "}\n";
    EXPECT_FALSE(has_rule(htd::lint::lint_source("src/stats/health.cpp", cpp),
                          "missing-nodiscard"));
}

// --- determinism passes (v4) ------------------------------------------------

TEST(LintDeterminism, GlobalMutableStateFlagsStaticsAndThreadLocals) {
    const std::string src =
        "void f() {\n"
        "    static int counter = 0;\n"
        "    thread_local double scratch = 0.0;\n"
        "    static const int limit = 4;\n"         // immutable: fine
        "    static constexpr double pi = 3.14;\n"  // immutable: fine
        "    (void)counter; (void)scratch; (void)limit; (void)pi;\n"
        "}\n"
        "static_assert(true, \"not a variable\");\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/core/x.cpp", src);
    ASSERT_EQ(rules_of(findings),
              (std::vector<std::string>{"global-mutable-state",
                                        "global-mutable-state"}));
    EXPECT_EQ(findings[0].line, 2u);
    EXPECT_NE(findings[0].message.find("'counter'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("HTD_SHARED_STATE_OK"),
              std::string::npos);
    EXPECT_EQ(findings[1].line, 3u);
    EXPECT_NE(findings[1].message.find("'scratch'"), std::string::npos);
    // The rule gates src/ and tools/; fixtures and tests are exempt.
    EXPECT_TRUE(htd::lint::lint_source("tests/x.cpp", src).empty());
}

TEST(LintDeterminism, SharedStateAnnotationSuppressesAndIsRecorded) {
    const std::string annotated =
        "static int hits HTD_SHARED_STATE_OK(\n"
        "    \"metrics only; guarded by the registry mutex\") = 0;\n";
    const htd::lint::FileAnalysis fa =
        htd::lint::analyze_file("src/obs/x.cpp", annotated);
    EXPECT_TRUE(fa.findings.empty()) << [&] {
        Report d;
        d.findings = fa.findings;
        return dump_report(d);
    }();
    ASSERT_EQ(fa.annotations.size(), 1u);
    EXPECT_EQ(fa.annotations[0].symbol, "hits");
    EXPECT_EQ(fa.annotations[0].line, 1u);
    EXPECT_NE(fa.annotations[0].justification.find("registry mutex"),
              std::string::npos);

    // A blank justification is itself a finding: the annotation is the
    // audit record, not a mute button.
    const std::string blank = "static int hits HTD_SHARED_STATE_OK(\"\") = 0;\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/obs/x.cpp", blank);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "global-mutable-state");
    EXPECT_NE(findings[0].message.find("non-empty justification"),
              std::string::npos);
}

TEST(LintDeterminism, UnorderedIterationEscapeFlagsSerializedOrder) {
    const std::string streamed =
        "#include <unordered_map>\n"
        "#include <string>\n"
        "void dump(std::ostream& os) {\n"
        "    std::unordered_map<std::string, double> stats;\n"
        "    for (const auto& [k, v] : stats) {\n"
        "        os << k;\n"
        "    }\n"
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/obs/x.cpp", streamed);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iteration-escape");
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_NE(findings[0].message.find("'stats'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("declared line 4"), std::string::npos);

    // An escape through an order-preserving sink (Json::set, push_back...)
    // is the same bug as streaming.
    const std::string appended =
        "#include <unordered_set>\n"
        "#include <vector>\n"
        "void collect(std::vector<int>& out) {\n"
        "    std::unordered_set<int> seen;\n"
        "    for (const int v : seen) {\n"
        "        out.push_back(v);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/stats/x.cpp", appended),
                         "unordered-iteration-escape"));

    // Copying into a sorted container first is exactly the prescribed fix.
    const std::string sorted_copy =
        "#include <map>\n"
        "#include <unordered_map>\n"
        "void dump(htd::io::Json& out) {\n"
        "    std::unordered_map<std::string, double> stats;\n"
        "    std::map<std::string, double> ordered(stats.begin(), stats.end());\n"
        "    for (const auto& [k, v] : ordered) {\n"
        "        out.set(k, v);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/obs/x.cpp", sorted_copy).empty());

    // Order-insensitive consumption (a commutative reduction) never
    // serializes the order and stays clean — single-statement body path.
    const std::string reduction =
        "#include <unordered_map>\n"
        "double total(const std::unordered_map<int, double>& m) {\n"
        "    double t = 0.0;\n"
        "    for (const auto& [k, v] : m) t = t + v;\n"
        "    return t;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", reduction).empty());
}

TEST(LintDeterminism, RngDisciplineFlagsWallClockSeeds) {
    // tools/ scope avoids overlapping std-random-in-library findings.
    const std::string time_seeded =
        "#include <ctime>\n"
        "#include <random>\n"
        "void f() {\n"
        "    std::mt19937 gen(static_cast<unsigned>(std::time(nullptr)));\n"
        "    (void)gen;\n"
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("tools/htd_score/x.cpp", time_seeded);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "rng-discipline");
    EXPECT_EQ(findings[0].line, 4u);
    EXPECT_NE(findings[0].message.find("'gen'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("wall clock"), std::string::npos);

    // Seeding from the experiment seed is the discipline.
    const std::string good =
        "#include <random>\n"
        "void f(unsigned seed) {\n"
        "    std::mt19937 gen(seed);\n"
        "    (void)gen;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("tools/htd_score/x.cpp", good).empty());
}

TEST(LintDeterminism, RngDisciplineFlagsSharedEngineInParallelRegion) {
    const std::string shared =
        "void f(htd::rng::Rng& rng, double* out, int n) {\n"
        "    HTD_PARALLEL_READY;\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        out[i] = draw(rng) + jitter(rng);\n"
        "    }\n"
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/stats/x.cpp", shared);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "rng-discipline");
    EXPECT_EQ(findings[0].line, 2u);  // anchored at the marker
    EXPECT_NE(findings[0].message.find("'rng'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("2 call sites"), std::string::npos);
    EXPECT_NE(findings[0].message.find("Rng::split"), std::string::npos);

    // One substream per iteration is the prescribed fix.
    const std::string split =
        "void f(htd::rng::Rng& rng, double* out, int n) {\n"
        "    HTD_PARALLEL_READY;\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        htd::rng::Rng local = rng.split();\n"
        "        out[i] = draw(local);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", split).empty());

    // The same reuse outside any HTD_PARALLEL_READY region is sequential
    // code and none of this rule's business.
    const std::string unmarked =
        "void f(htd::rng::Rng& rng, double* out, int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        out[i] = draw(rng) + jitter(rng);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", unmarked).empty());
}

TEST(LintDeterminism, FloatReductionOrderFlagsNaiveAccumulation) {
    const std::string naive =
        "double f(const double* xs, int n) {\n"
        "    double total = 0.0;\n"
        "    HTD_PARALLEL_READY;\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        total += xs[i];\n"
        "    }\n"
        "    return total;\n"
        "}\n";
    const std::vector<Finding> findings =
        htd::lint::lint_source("src/stats/x.cpp", naive);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "float-reduction-order");
    EXPECT_EQ(findings[0].line, 5u);
    EXPECT_NE(findings[0].message.find("'total += ...'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("stable_sum"), std::string::npos);

    // std::accumulate / std::reduce in a marked region carry the same
    // order dependence.
    const std::string accumulate =
        "#include <numeric>\n"
        "#include <vector>\n"
        "double g(const std::vector<double>& xs) {\n"
        "    HTD_PARALLEL_READY;\n"
        "    while (pending()) {\n"
        "        sink(std::accumulate(xs.begin(), xs.end(), 0.0));\n"
        "    }\n"
        "    return 0.0;\n"
        "}\n";
    EXPECT_TRUE(has_rule(htd::lint::lint_source("src/stats/x.cpp", accumulate),
                         "float-reduction-order"));

    // The compensated accumulator is the prescribed migration target.
    const std::string migrated =
        "#include \"core/stable_sum.hpp\"\n"
        "double h(const double* xs, int n) {\n"
        "    htd::core::StableAccumulator acc;\n"
        "    HTD_PARALLEL_READY;\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        acc.add(xs[i]);\n"
        "    }\n"
        "    return acc.value();\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", migrated).empty());

    // Unmarked sequential reductions are out of scope by design: the rule
    // gates regions declared ready for threading, not all of src/.
    const std::string outside =
        "double k(const double* xs, int n) {\n"
        "    double total = 0.0;\n"
        "    for (int i = 0; i < n; ++i) total += xs[i];\n"
        "    return total;\n"
        "}\n";
    EXPECT_TRUE(htd::lint::lint_source("src/stats/x.cpp", outside).empty());
}

// --- tree walk + report -----------------------------------------------------

class LintTreeTest : public ::testing::Test {
protected:
    void SetUp() override {
        root_ = fs::temp_directory_path() /
                ("htd_lint_test_" + std::to_string(::getpid()));
        fs::remove_all(root_);
        write("src/core/bad.cpp",
              "#include <random>\n"
              "void f() { std::random_device rd; (void)rd; }\n");
        write("src/core/good.hpp",
              "#pragma once\nnamespace htd::core { void g(); }\n");
    }
    void TearDown() override { fs::remove_all(root_); }

    void write(const std::string& rel, const std::string& contents) {
        const fs::path p = root_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream out(p);
        ASSERT_TRUE(out.is_open()) << rel;
        out << contents;
    }

    [[nodiscard]] Report lint(const Options& options) const {
        return htd::lint::lint_paths({(root_ / "src").string()}, options);
    }

    fs::path root_;
};

TEST_F(LintTreeTest, WalksTreeAndCountsFiles) {
    const Report report =
        htd::lint::lint_paths({(root_ / "src").string()}, kNoAllow);
    EXPECT_EQ(report.files_checked, 2u);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "rng-seed");
    EXPECT_EQ(report.findings[0].line, 2u);
    EXPECT_FALSE(report.clean());
}

TEST_F(LintTreeTest, AllowlistSuppressesAndFlagsStaleEntries) {
    const std::vector<AllowEntry> allow = {
        {"rng-seed", "src/core/bad.cpp", "fixture"},   // suppresses the finding
        {"rng-seed", "src/core/other.cpp", "stale"}    // stale: matches nothing
    };
    const Report report =
        htd::lint::lint_paths({(root_ / "src").string()}, allow);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.suppressed, 1u);
    ASSERT_EQ(report.unused_allow.size(), 1u);
    EXPECT_EQ(report.unused_allow[0].path_suffix, "src/core/other.cpp");
    ASSERT_EQ(report.allow_usage.size(), 1u);
    EXPECT_EQ(report.allow_usage[0].entry.path_suffix, "src/core/bad.cpp");
    EXPECT_EQ(report.allow_usage[0].hits, 1u);
}

TEST_F(LintTreeTest, ThrowsOnMissingPath) {
    EXPECT_THROW(
        (void)htd::lint::lint_paths({(root_ / "nope").string()}, kNoAllow),
        std::runtime_error);
}

TEST_F(LintTreeTest, JsonReportSchema) {
    Options options;
    options.allow = {{"rng-seed", "src/core/bad.cpp", "seeded fixture"}};
    options.jobs = 1;
    const Report report = lint(options);
    const Json json = htd::lint::report_json(report);
    EXPECT_EQ(json.at("schema").str(), "htd_lint.v3");
    EXPECT_EQ(json.at("files_checked").number(), 2.0);
    EXPECT_EQ(json.at("files_cached").number(), 0.0);
    EXPECT_EQ(json.at("suppressed").number(), 1.0);
    EXPECT_EQ(json.at("findings").size(), 0u);

    // Pass wall times, in execution order: the file scan, the four v4
    // determinism passes, the global passes, then the total.
    const Json& passes = json.at("passes");
    ASSERT_EQ(passes.size(), 8u);
    EXPECT_EQ(passes.at(0).at("name").str(), "scan");
    EXPECT_EQ(passes.at(1).at("name").str(), "global-mutable-state");
    EXPECT_EQ(passes.at(2).at("name").str(), "unordered-iteration-escape");
    EXPECT_EQ(passes.at(3).at("name").str(), "rng-discipline");
    EXPECT_EQ(passes.at(4).at("name").str(), "float-reduction-order");
    EXPECT_EQ(passes.at(5).at("name").str(), "layering");
    EXPECT_EQ(passes.at(6).at("name").str(), "result-discard");
    EXPECT_EQ(passes.at(7).at("name").str(), "total");
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_GE(passes.at(i).at("wall_ms").number(), 0.0);
    }

    // v3 carries the audited shared-state sites; this fixture has none.
    EXPECT_EQ(json.at("annotations").size(), 0u);

    // Surviving allowlist entries carry their justification for audits.
    const Json& allow = json.at("allowlist");
    ASSERT_EQ(allow.size(), 1u);
    EXPECT_EQ(allow.at(0).at("rule").str(), "rng-seed");
    EXPECT_EQ(allow.at(0).at("justification").str(), "seeded fixture");
    EXPECT_EQ(allow.at(0).at("findings_suppressed").number(), 1.0);
    EXPECT_EQ(json.at("unused_allowlist_entries").size(), 0u);

    // The JSON mode must round-trip through the strict parser.
    const Json reparsed = Json::parse(json.dump(2));
    EXPECT_EQ(reparsed.at("schema").str(), "htd_lint.v3");
}

TEST_F(LintTreeTest, JsonReportIsByteIdenticalAcrossJobCounts) {
    // A handful of extra files so the thread pool actually interleaves.
    write("src/io/a.cpp", "void a() { }\n");
    write("src/io/b.cpp", "#include <random>\n"
                          "void b() { std::mt19937 g; (void)g; }\n");
    write("src/stats/c.hpp", "#pragma once\nnamespace htd::stats {}\n");
    write("src/stats/d.cpp",
          "void d() { static int n = 0; (void)n; }\n");
    std::vector<std::string> dumps;
    for (const unsigned jobs : {1u, 2u, 8u}) {
        Options options;
        options.jobs = jobs;
        Report report = lint(options);
        // Wall times are the one legitimately nondeterministic field;
        // everything else must not depend on scheduling.
        for (auto& pass : report.passes) pass.wall_ms = 0.0;
        dumps.push_back(htd::lint::report_json(report).dump(2));
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);
    // The scrubbed report still carries real content.
    EXPECT_NE(dumps[0].find("rng-seed"), std::string::npos);
    EXPECT_NE(dumps[0].find("global-mutable-state"), std::string::npos);
}

TEST_F(LintTreeTest, ColdThenWarmRunsHitTheCache) {
    Options options;
    options.cache_dir = (root_ / "cache").string();
    options.jobs = 2;
    const Report cold = lint(options);
    EXPECT_EQ(cold.files_cached, 0u);
    ASSERT_EQ(cold.findings.size(), 1u);

    const Report warm = lint(options);
    EXPECT_EQ(warm.files_cached, warm.files_checked);
    ASSERT_EQ(warm.findings.size(), 1u);
    EXPECT_EQ(warm.findings[0].rule, cold.findings[0].rule);
    EXPECT_EQ(warm.findings[0].line, cold.findings[0].line);
    EXPECT_EQ(warm.findings[0].message, cold.findings[0].message);

    // Editing a file invalidates exactly that entry.
    write("src/core/bad.cpp", "void f() { }\n");
    const Report edited = lint(options);
    EXPECT_EQ(edited.files_cached, edited.files_checked - 1);
    EXPECT_TRUE(edited.clean()) << dump_report(edited);
}

TEST(LintReportText, RendersFileLineRuleTimingsAndSummary) {
    Report report;
    report.findings.push_back({"src/x.cpp", 7, "rng-seed", "message"});
    report.files_checked = 3;
    report.files_cached = 2;
    report.suppressed = 2;
    report.passes.push_back({"scan", 12.5});
    report.passes.push_back({"total", 13.0});
    const std::string text = htd::lint::report_text(report);
    EXPECT_NE(text.find("src/x.cpp:7: [rng-seed] message"), std::string::npos);
    EXPECT_NE(text.find("3 files"), std::string::npos);
    EXPECT_NE(text.find("(2 cached)"), std::string::npos);
    EXPECT_NE(text.find("2 suppressed"), std::string::npos);
    EXPECT_NE(text.find("scan 12.5 ms"), std::string::npos);
}

// --- include-graph layering -------------------------------------------------

class LintLayeringTest : public LintTreeTest {
protected:
    void SetUp() override {
        root_ = fs::temp_directory_path() /
                ("htd_lint_layer_test_" + std::to_string(::getpid()));
        fs::remove_all(root_);
    }

    [[nodiscard]] Report lint_with_layers(const std::string& layers) const {
        Options options;
        options.layers = htd::lint::parse_layers(layers);
        options.jobs = 1;
        return htd::lint::lint_paths({(root_ / "src").string()}, options);
    }
};

TEST_F(LintLayeringTest, CleanDagPasses) {
    write("src/core/err.hpp", "#pragma once\nnamespace htd::core {}\n");
    write("src/io/csv.hpp",
          "#pragma once\n"
          "#include \"core/err.hpp\"\n"
          "namespace htd::io {}\n");
    const Report report = lint_with_layers("core\nio\n");
    EXPECT_TRUE(report.clean()) << dump_report(report);
}

TEST_F(LintLayeringTest, BackEdgeIsRejectedWithTheOffendingInclude) {
    write("src/core/err.hpp",
          "#pragma once\n"
          "#include \"io/csv.hpp\"\n"  // core (layer 0) reaching up into io
          "namespace htd::core {}\n");
    write("src/io/csv.hpp", "#pragma once\nnamespace htd::io {}\n");
    const Report report = lint_with_layers("core\nio\n");
    ASSERT_EQ(report.findings.size(), 1u) << dump_report(report);
    const Finding& f = report.findings[0];
    EXPECT_EQ(f.rule, "layering");
    EXPECT_EQ(f.line, 2u);
    EXPECT_NE(f.file.find("src/core/err.hpp"), std::string::npos);
    EXPECT_NE(f.message.find("layering back-edge"), std::string::npos);
    EXPECT_NE(f.message.find("'core' (layer 0)"), std::string::npos);
    EXPECT_NE(f.message.find("'io' (layer 1)"), std::string::npos);
    EXPECT_NE(f.message.find("\"io/csv.hpp\""), std::string::npos);
}

TEST_F(LintLayeringTest, PeerModulesMustStayIndependent) {
    write("src/crypto/aes.hpp",
          "#pragma once\n"
          "#include \"process/variation.hpp\"\n"
          "namespace htd::crypto {}\n");
    write("src/process/variation.hpp",
          "#pragma once\nnamespace htd::process {}\n");
    const Report report = lint_with_layers("crypto process\n");
    ASSERT_EQ(report.findings.size(), 1u) << dump_report(report);
    EXPECT_EQ(report.findings[0].rule, "layering");
    EXPECT_NE(report.findings[0].message.find("peer coupling"),
              std::string::npos);
}

TEST_F(LintLayeringTest, CycleIsReportedWithTheFullChain) {
    write("src/core/a.hpp",
          "#pragma once\n"
          "#include \"core/b.hpp\"\n"
          "namespace htd::core {}\n");
    write("src/core/b.hpp",
          "#pragma once\n"
          "#include \"core/a.hpp\"\n"
          "namespace htd::core {}\n");
    const Report report = lint_with_layers("core\n");
    ASSERT_EQ(report.findings.size(), 1u) << dump_report(report);
    const Finding& f = report.findings[0];
    EXPECT_EQ(f.rule, "include-cycle");
    EXPECT_NE(f.message.find("include cycle:"), std::string::npos);
    // The full chain names both files, and the head repeats to close it.
    EXPECT_NE(f.message.find("src/core/a.hpp"), std::string::npos);
    EXPECT_NE(f.message.find("src/core/b.hpp"), std::string::npos);
    EXPECT_NE(f.message.find("break one of these includes"), std::string::npos);
}

TEST_F(LintLayeringTest, ModuleMissingFromSpecIsFlagged) {
    write("src/rogue/x.hpp", "#pragma once\nnamespace htd::rogue {}\n");
    write("src/core/err.hpp", "#pragma once\nnamespace htd::core {}\n");
    const Report report = lint_with_layers("core\n");
    ASSERT_EQ(report.findings.size(), 1u) << dump_report(report);
    EXPECT_EQ(report.findings[0].rule, "layer-unmapped");
    EXPECT_EQ(report.findings[0].line, 1u);
    EXPECT_NE(report.findings[0].message.find("'rogue'"), std::string::npos);

    // An include *into* the unmapped module from a mapped one is flagged
    // at the include site.
    write("src/core/err.hpp",
          "#pragma once\n"
          "#include \"rogue/x.hpp\"\n"
          "namespace htd::core {}\n");
    const Report again = lint_with_layers("core\n");
    EXPECT_TRUE(has_rule(again.findings, "layer-unmapped"));
    bool include_site = false;
    for (const Finding& f : again.findings) {
        if (f.rule == "layer-unmapped" && f.line == 2u &&
            f.message.find("rogue/x.hpp") != std::string::npos) {
            include_site = true;
        }
    }
    EXPECT_TRUE(include_site) << dump_report(again);
}

TEST_F(LintLayeringTest, EditingLayersInvalidatesTheWarmCache) {
    write("src/core/err.hpp", "#pragma once\nnamespace htd::core {}\n");
    write("src/io/csv.hpp",
          "#pragma once\n"
          "#include \"core/err.hpp\"\n"
          "namespace htd::io {}\n");
    Options options;
    options.layers = htd::lint::parse_layers("core\nio\n");
    options.cache_dir = (root_ / "cache").string();
    options.jobs = 1;
    const Report cold =
        htd::lint::lint_paths({(root_ / "src").string()}, options);
    EXPECT_TRUE(cold.clean()) << dump_report(cold);
    EXPECT_EQ(cold.files_cached, 0u);
    const Report warm =
        htd::lint::lint_paths({(root_ / "src").string()}, options);
    EXPECT_EQ(warm.files_cached, warm.files_checked);

    // Same tree, same cache dir, different layer spec: the configuration
    // is part of every cache key (the v6 regression this guards — a warm
    // cache must never smuggle results across a config edit), so every
    // entry misses, and the inverted spec surfaces the back-edge.
    options.layers = htd::lint::parse_layers("io\ncore\n");
    const Report edited =
        htd::lint::lint_paths({(root_ / "src").string()}, options);
    EXPECT_EQ(edited.files_cached, 0u);
    EXPECT_TRUE(has_rule(edited.findings, "layering")) << dump_report(edited);

    // And an allowlist edit invalidates the same way.
    options.allow = {{"layering", "src/io/csv.hpp", "fixture"}};
    const Report allowed =
        htd::lint::lint_paths({(root_ / "src").string()}, options);
    EXPECT_EQ(allowed.files_cached, 0u);
}

TEST(LintLayerSpec, ParsesLayersAndRejectsDuplicates) {
    const LayerSpec spec = htd::lint::parse_layers(
        "# comment\n"
        "core\n"
        "crypto process trojan\n"
        "pipeline\n");
    ASSERT_EQ(spec.layers.size(), 3u);
    EXPECT_EQ(spec.rank.at("core"), 0);
    EXPECT_EQ(spec.rank.at("process"), 1);
    EXPECT_EQ(spec.rank.at("pipeline"), 2);
    EXPECT_THROW((void)htd::lint::parse_layers("core\ncore\n"),
                 std::runtime_error);
}

// --- result-discard ---------------------------------------------------------

class LintDiscardTest : public LintLayeringTest {
protected:
    void SetUp() override {
        LintLayeringTest::SetUp();
        write("src/stats/boundary.hpp",
              "#pragma once\n"
              "#include <optional>\n"
              "namespace htd::stats {\n"
              "struct BoundaryStatus { bool admitted; };\n"
              "[[nodiscard]] BoundaryStatus admit(double v);\n"
              "[[nodiscard]] std::optional<int> find(int key);\n"
              "}\n");
    }

    [[nodiscard]] Report lint_tree() const {
        Options options;
        options.jobs = 1;
        return htd::lint::lint_paths({(root_ / "src").string()}, options);
    }
};

TEST_F(LintDiscardTest, BareStatementCallsDroppingMustUseValuesAreFlagged) {
    write("src/stats/caller.cpp",
          "#include \"stats/boundary.hpp\"\n"
          "namespace htd::stats {\n"
          "void caller() {\n"
          "    admit(3.0);\n"            // discard: flagged
          "    (void)admit(4.0);\n"      // explicit drop: fine
          "    if (admit(5.0).admitted) { }\n"  // used: fine
          "    auto r = find(7);\n"      // bound: fine
          "    (void)r;\n"
          "}\n"
          "}\n");
    const Report report = lint_tree();
    ASSERT_EQ(report.findings.size(), 1u) << dump_report(report);
    const Finding& f = report.findings[0];
    EXPECT_EQ(f.rule, "result-discard");
    EXPECT_EQ(f.line, 4u);
    EXPECT_NE(f.file.find("src/stats/caller.cpp"), std::string::npos);
    EXPECT_NE(f.message.find("'admit'"), std::string::npos);
}

TEST_F(LintDiscardTest, MemberChainDiscardsResolveTheLastCall) {
    write("src/stats/caller.cpp",
          "#include \"stats/boundary.hpp\"\n"
          "namespace htd::stats {\n"
          "struct Monitor { std::optional<int> find(int k); };\n"
          "void caller(Monitor& m) {\n"
          "    m.find(1);\n"        // optional dropped: flagged
          "    unrelated(2);\n"     // not a must-use function: fine
          "}\n"
          "void unrelated(int);\n"
          "}\n");
    const Report report = lint_tree();
    ASSERT_EQ(report.findings.size(), 1u) << dump_report(report);
    EXPECT_EQ(report.findings[0].rule, "result-discard");
    EXPECT_EQ(report.findings[0].line, 5u);
    EXPECT_NE(report.findings[0].message.find("'find'"), std::string::npos);
}

// --- the gate itself --------------------------------------------------------

// The committed tree lints clean — line rules, layering, cycles,
// [[nodiscard]] coverage and result discards — under the committed
// allowlist and layering spec, with no stale allowlist entries. This is
// exactly what `scripts/check.sh --analyze` enforces; failing here means
// a new invariant violation (or a rotted allowlist) is about to land.
TEST(LintGate, CommittedTreeIsCleanUnderCommittedAllowlist) {
    const fs::path repo(HTD_SOURCE_DIR);
    std::ifstream allow_in(repo / "tools" / "htd_lint" / "allowlist.txt");
    ASSERT_TRUE(allow_in.is_open());
    std::ostringstream allow_buf;
    allow_buf << allow_in.rdbuf();

    std::ifstream layers_in(repo / "tools" / "htd_lint" / "layers.txt");
    ASSERT_TRUE(layers_in.is_open());
    std::ostringstream layers_buf;
    layers_buf << layers_in.rdbuf();

    Options options;
    options.allow = htd::lint::parse_allowlist(allow_buf.str());
    options.layers = htd::lint::parse_layers(layers_buf.str());
    EXPECT_FALSE(options.allow.empty());
    EXPECT_GT(options.layers.layers.size(), 5u);

    std::vector<std::string> paths;
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
        paths.push_back((repo / dir).string());
    }
    const Report report = htd::lint::lint_paths(paths, options);
    EXPECT_GT(report.files_checked, 100u);
    EXPECT_TRUE(report.clean()) << dump_report(report);
    EXPECT_TRUE(report.unused_allow.empty()) << dump_report(report);
    EXPECT_GT(report.suppressed, 0u);  // the allowlist is real, not decorative
    ASSERT_EQ(report.passes.size(), 8u);
    EXPECT_EQ(report.passes[7].name, "total");

    // The determinism gate is live on the committed tree: the obs layer's
    // audited singletons surface as annotations, every one justified.
    EXPECT_FALSE(report.annotations.empty());
    for (const auto& a : report.annotations) {
        EXPECT_FALSE(a.justification.empty()) << a.file << ":" << a.line;
        EXPECT_FALSE(a.symbol.empty()) << a.file << ":" << a.line;
    }
}

}  // namespace
