/// Tests for the smoothing kernels and (adaptive) kernel density estimation —
/// the paper's Section 2.5 machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "rng/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "stats/kernels.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::rng::Rng;
using htd::stats::AdaptiveKde;
using htd::stats::EpanechnikovKernel;
using htd::stats::GaussianKernel;
using htd::stats::Kde;
using htd::stats::KernelType;

TEST(UnitBallVolume, KnownValues) {
    EXPECT_NEAR(htd::stats::unit_ball_volume(1), 2.0, 1e-12);
    EXPECT_NEAR(htd::stats::unit_ball_volume(2), std::numbers::pi, 1e-12);
    EXPECT_NEAR(htd::stats::unit_ball_volume(3), 4.0 / 3.0 * std::numbers::pi, 1e-12);
    EXPECT_THROW((void)htd::stats::unit_ball_volume(0), std::invalid_argument);
}

TEST(Epanechnikov, ZeroOutsideUnitBall) {
    const EpanechnikovKernel k(2);
    const double t_out[] = {1.0, 0.5};
    EXPECT_EQ(k.density(t_out), 0.0);
    const double t_in[] = {0.1, 0.1};
    EXPECT_GT(k.density(t_in), 0.0);
}

TEST(Epanechnikov, PeakAtOrigin1D) {
    // Ke(0) = 1/2 c_1^{-1} (1+2) = 3/4 for d = 1 (the textbook value).
    const EpanechnikovKernel k(1);
    const double origin[] = {0.0};
    EXPECT_NEAR(k.density(origin), 0.75, 1e-12);
}

/// Property: the kernel integrates to 1 (Monte Carlo integration over the
/// unit cube scaled to the support) in several dimensions.
class EpanechnikovNormalization : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EpanechnikovNormalization, IntegratesToOne) {
    const std::size_t d = GetParam();
    const EpanechnikovKernel k(d);
    Rng rng(101 + d);
    const int n = 400000;
    double acc = 0.0;
    std::vector<double> t(d);
    // MC integration over [-1, 1]^d (volume 2^d) covers the support.
    for (int i = 0; i < n; ++i) {
        for (double& v : t) v = rng.uniform(-1.0, 1.0);
        acc += k.density(t);
    }
    const double integral = acc / n * std::pow(2.0, static_cast<double>(d));
    EXPECT_NEAR(integral, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Dims, EpanechnikovNormalization, ::testing::Values(1, 2, 3, 6));

/// Property: exact sampling matches the radial law; E[||t||^2] = d * (num/den)
/// with num = 1/(d+2)-1/(d+4), den = 1/d - 1/(d+2) ... verified numerically
/// against direct integration.
class EpanechnikovSampling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EpanechnikovSampling, SampleMomentsMatchDensity) {
    const std::size_t d = GetParam();
    const EpanechnikovKernel k(d);
    Rng rng(202 + d);
    std::vector<double> t(d);
    const int n = 200000;
    double mean_r2 = 0.0;
    Vector mean(d);
    for (int i = 0; i < n; ++i) {
        k.sample(rng, t);
        double r2 = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
            r2 += t[c] * t[c];
            mean[c] += t[c];
        }
        ASSERT_LE(r2, 1.0 + 1e-12);
        mean_r2 += r2;
    }
    mean_r2 /= n;
    mean /= static_cast<double>(n);

    // Analytic E[r^2] for the radial density ~ r^{d-1}(1-r^2).
    const double dd = static_cast<double>(d);
    const double num = 1.0 / (dd + 2.0) - 1.0 / (dd + 4.0);
    const double den = 1.0 / dd - 1.0 / (dd + 2.0);
    EXPECT_NEAR(mean_r2, num / den, 0.01);

    // Symmetric kernel: zero mean per coordinate.
    for (std::size_t c = 0; c < d; ++c) EXPECT_NEAR(mean[c], 0.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Dims, EpanechnikovSampling, ::testing::Values(1, 2, 3, 6, 8));

TEST(GaussianKernelTest, MatchesStandardNormal1D) {
    const GaussianKernel k(1);
    const double at0[] = {0.0};
    EXPECT_NEAR(k.density(at0), 1.0 / std::sqrt(2.0 * std::numbers::pi), 1e-12);
    const double at1[] = {1.0};
    EXPECT_NEAR(k.density(at1),
                std::exp(-0.5) / std::sqrt(2.0 * std::numbers::pi), 1e-12);
}

// --- Silverman bandwidth -----------------------------------------------------------

TEST(Silverman, DecreasesWithSampleCount) {
    const double h100 = htd::stats::silverman_bandwidth(100, 6);
    const double h1000 = htd::stats::silverman_bandwidth(1000, 6);
    EXPECT_GT(h100, h1000);
    EXPECT_GT(h100, 0.0);
}

TEST(Silverman, GaussianRuleKnownValue1D) {
    // (4/3)^{1/5} * n^{-1/5}
    const double h = htd::stats::silverman_bandwidth(100, 1, KernelType::kGaussian);
    EXPECT_NEAR(h, std::pow(4.0 / 3.0, 0.2) * std::pow(100.0, -0.2), 1e-12);
}

TEST(Silverman, RejectsDegenerate) {
    EXPECT_THROW((void)htd::stats::silverman_bandwidth(0, 2), std::invalid_argument);
    EXPECT_THROW((void)htd::stats::silverman_bandwidth(10, 0), std::invalid_argument);
}

// --- Kde -----------------------------------------------------------------------------

Matrix gaussian_cloud(Rng& rng, std::size_t n, std::size_t d, double mean, double sd) {
    Matrix data(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) data(r, c) = rng.normal(mean, sd);
    return data;
}

TEST(KdeTest, RejectsEmptyData) {
    EXPECT_THROW((void)Kde(Matrix{}), std::invalid_argument);
}

TEST(KdeTest, DensityHigherNearDataThanFar) {
    Rng rng(1);
    const Matrix data = gaussian_cloud(rng, 200, 2, 0.0, 1.0);
    const Kde kde(data);
    EXPECT_GT(kde.density(Vector{0.0, 0.0}), kde.density(Vector{6.0, 6.0}));
}

TEST(KdeTest, DensityIntegratesToOne1D) {
    Rng rng(2);
    const Matrix data = gaussian_cloud(rng, 300, 1, 0.0, 1.0);
    const Kde kde(data);
    double integral = 0.0;
    const double dx = 0.02;
    for (double x = -6.0; x <= 6.0; x += dx) {
        integral += kde.density(Vector{x}) * dx;
    }
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, SamplesReproduceSourceMoments) {
    Rng rng(3);
    const Matrix data = gaussian_cloud(rng, 500, 2, 5.0, 2.0);
    const Kde kde(data);
    const Matrix samples = kde.sample_n(rng, 20000);
    const Vector m = htd::stats::column_means(samples);
    const Vector s = htd::stats::column_stddevs(samples);
    EXPECT_NEAR(m[0], 5.0, 0.15);
    EXPECT_NEAR(m[1], 5.0, 0.15);
    // KDE sampling inflates the variance by the kernel width: std >= source.
    EXPECT_GT(s[0], 1.9);
    EXPECT_LT(s[0], 2.8);
}

TEST(KdeTest, AnisotropicDataHandledByStandardization) {
    Rng rng(4);
    Matrix data(300, 2);
    for (std::size_t r = 0; r < 300; ++r) {
        data(r, 0) = rng.normal(0.0, 100.0);  // very different scales
        data(r, 1) = rng.normal(0.0, 0.01);
    }
    const Kde kde(data);
    const Matrix samples = kde.sample_n(rng, 10000);
    const Vector s = htd::stats::column_stddevs(samples);
    EXPECT_NEAR(s[0] / 100.0, s[1] / 0.01, 0.2 * s[0] / 100.0 + 0.3);
}

TEST(KdeTest, ExplicitBandwidthRespected) {
    Rng rng(5);
    const Matrix data = gaussian_cloud(rng, 100, 1, 0.0, 1.0);
    const Kde narrow(data, 0.05);
    const Kde wide(data, 2.0);
    EXPECT_DOUBLE_EQ(narrow.bandwidth(), 0.05);
    // Wider bandwidth -> wider sampled population.
    const double s_narrow =
        htd::stats::column_stddevs(narrow.sample_n(rng, 5000))[0];
    const double s_wide = htd::stats::column_stddevs(wide.sample_n(rng, 5000))[0];
    EXPECT_GT(s_wide, s_narrow);
}

// --- AdaptiveKde -----------------------------------------------------------------------

TEST(AdaptiveKdeTest, AlphaZeroMatchesPilotLambdas) {
    Rng rng(6);
    const Matrix data = gaussian_cloud(rng, 100, 2, 0.0, 1.0);
    const AdaptiveKde kde(data, 0.0);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(kde.local_bandwidth_factor(i), 1.0);
    }
}

TEST(AdaptiveKdeTest, RejectsBadAlphaAndLambda) {
    Rng rng(7);
    const Matrix data = gaussian_cloud(rng, 20, 1, 0.0, 1.0);
    EXPECT_THROW(AdaptiveKde(data, -0.1), std::invalid_argument);
    EXPECT_THROW(AdaptiveKde(data, 1.1), std::invalid_argument);
    EXPECT_THROW(AdaptiveKde(data, 0.5, 0.0, KernelType::kEpanechnikov, 0.5),
                 std::invalid_argument);
}

TEST(AdaptiveKdeTest, TailPointsGetLargerBandwidths) {
    // 1-D data with a dense core and one clear outlier.
    Matrix data;
    Rng rng(8);
    for (int i = 0; i < 50; ++i) data.append_row(Vector{rng.normal(0.0, 0.5)});
    data.append_row(Vector{6.0});  // tail observation, index 50
    const AdaptiveKde kde(data, 0.5, 0.0, KernelType::kEpanechnikov, 100.0);
    double core_avg = 0.0;
    for (std::size_t i = 0; i < 50; ++i) core_avg += kde.local_bandwidth_factor(i);
    core_avg /= 50.0;
    EXPECT_GT(kde.local_bandwidth_factor(50), core_avg);
}

TEST(AdaptiveKdeTest, LambdaClampHolds) {
    Matrix data;
    Rng rng(9);
    for (int i = 0; i < 50; ++i) data.append_row(Vector{rng.normal(0.0, 0.5)});
    data.append_row(Vector{8.0});
    const AdaptiveKde kde(data, 1.0, 0.0, KernelType::kEpanechnikov, 1.5);
    for (std::size_t i = 0; i < kde.observation_count(); ++i) {
        EXPECT_LE(kde.local_bandwidth_factor(i), 1.5 + 1e-12);
    }
}

TEST(AdaptiveKdeTest, GeometricMeanMatchesDefinition) {
    Rng rng(10);
    const Matrix data = gaussian_cloud(rng, 60, 2, 0.0, 1.0);
    const AdaptiveKde kde(data, 0.5);
    EXPECT_GT(kde.pilot_geometric_mean(), 0.0);
}

TEST(AdaptiveKdeTest, SamplesWidenTails) {
    Rng rng(11);
    const Matrix data = gaussian_cloud(rng, 200, 1, 0.0, 1.0);
    const AdaptiveKde adaptive(data, 0.9, 0.5);
    const Kde fixed(data, 0.5);
    const Matrix sa = adaptive.sample_n(rng, 30000);
    const Matrix sf = fixed.sample_n(rng, 30000);
    // The adaptive estimator pushes more mass into the tails: its sampled
    // 99.9th percentile should be at least as extreme as the fixed one's.
    std::vector<double> va(sa.rows()), vf(sf.rows());
    for (std::size_t i = 0; i < sa.rows(); ++i) va[i] = sa(i, 0);
    for (std::size_t i = 0; i < sf.rows(); ++i) vf[i] = sf(i, 0);
    EXPECT_GE(htd::stats::quantile(va, 0.999), htd::stats::quantile(vf, 0.999) - 0.05);
}

TEST(AdaptiveKdeTest, DensityIntegratesToOne1D) {
    Rng rng(12);
    const Matrix data = gaussian_cloud(rng, 200, 1, 0.0, 1.0);
    const AdaptiveKde kde(data, 0.5);
    double integral = 0.0;
    const double dx = 0.02;
    for (double x = -8.0; x <= 8.0; x += dx) integral += kde.density(Vector{x}) * dx;
    EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(AdaptiveKdeTest, SampleDimensionsMatch) {
    Rng rng(13);
    const Matrix data = gaussian_cloud(rng, 100, 6, -3.0, 0.4);
    const AdaptiveKde kde(data, 0.5);
    const Matrix s = kde.sample_n(rng, 1000);
    EXPECT_EQ(s.rows(), 1000u);
    EXPECT_EQ(s.cols(), 6u);
}

/// Property sweep over alpha: population spread grows monotonically-ish with
/// alpha (larger alpha -> wider nonzero-density region, as the paper notes).
class AdaptiveAlpha : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveAlpha, SpreadAtLeastSourceSpread) {
    const double alpha = GetParam();
    Rng rng(14);
    const Matrix data = gaussian_cloud(rng, 150, 2, 0.0, 1.0);
    const AdaptiveKde kde(data, alpha);
    const Matrix samples = kde.sample_n(rng, 10000);
    const Vector s = htd::stats::column_stddevs(samples);
    EXPECT_GT(s[0], 0.95);
    EXPECT_GT(s[1], 0.95);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AdaptiveAlpha, ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
