/// Tests for src/core/stable_sum.hpp — the order-pinned reduction
/// primitives the float-reduction-order lint rule prescribes for
/// HTD_PARALLEL_READY regions:
///  - StableAccumulator (Neumaier compensation) survives adversarial
///    cancellation that zeroes a naive sum,
///  - stable_sum's pairwise tree stays inside the analytic error bound
///    against a long-double reference while a naive left fold drifts,
///  - the migrated hot loops (KDE kernel evaluation, KMM Gram rows, the
///    bench_micro work-profile kernels) reproduce pinned outputs
///    bit-for-bit with pinned work counters, so a future change to the
///    reduction tree cannot silently move the statistics or the blessed
///    BENCH_micro work_profile.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/stable_sum.hpp"
#include "linalg/matrix.hpp"
#include "ml/kmm.hpp"
#include "ml/one_class_svm.hpp"
#include "obs/obs.hpp"
#include "rng/rng.hpp"
#include "stats/kde.hpp"

namespace {

using htd::core::StableAccumulator;
using htd::core::stable_sum;
using htd::linalg::Matrix;
using htd::linalg::Vector;

// --- compensation -----------------------------------------------------------

TEST(StableAccumulator, RecoversCatastrophicCancellation) {
    // The classic: 1.0 is annihilated by the 1e16 neighbours in a naive
    // left fold, but survives in the compensation term.
    StableAccumulator acc;
    for (const double x : {1e16, 1.0, -1e16}) acc.add(x);
    EXPECT_EQ(acc.value(), 1.0);

    double naive = 0.0;
    for (const double x : {1e16, 1.0, -1e16}) naive += x;
    EXPECT_EQ(naive, 0.0);  // the failure mode being compensated for

    // Neumaier's improvement over Kahan: compensation still works when
    // the large term arrives *after* a small running sum.
    StableAccumulator late_spike;
    for (const double x : {1.0, 1e100, 1.0, -1e100}) late_spike.add(x);
    EXPECT_EQ(late_spike.value(), 2.0);
}

TEST(StableAccumulator, IsConstexprAndStartsAtZero) {
    constexpr double two = [] {
        StableAccumulator a;
        a.add(1.5);
        a.add(0.5);
        return a.value();
    }();
    static_assert(two == 2.0);
    constexpr StableAccumulator empty;
    static_assert(empty.value() == 0.0);
}

// --- pairwise error bounds --------------------------------------------------

TEST(StableSum, StaysInsidePairwiseBoundAgainstLongDoubleReference) {
    // Wide-dynamic-range inputs: magnitudes spread over ~e^{±10}. The
    // pairwise error bound is eps * ceil(log2 n) * sum|x|; the naive left
    // fold's grows linearly in n.
    htd::rng::Rng rng(42);
    for (const std::size_t n : {std::size_t{7}, std::size_t{64},
                                std::size_t{1000}, std::size_t{4097}}) {
        std::vector<double> xs(n);
        long double ref = 0.0L;
        double sum_abs = 0.0;
        for (double& x : xs) {
            x = rng.normal() * std::exp(rng.normal(0.0, 3.0));
            ref += static_cast<long double>(x);
            sum_abs += std::abs(x);
        }
        const double stable = stable_sum(std::span<const double>(xs));
        const double err =
            std::abs(static_cast<double>(static_cast<long double>(stable) - ref));
        const double eps = std::numeric_limits<double>::epsilon();
        const double levels = std::ceil(std::log2(static_cast<double>(n)));
        EXPECT_LE(err, eps * levels * sum_abs) << "n=" << n;

        StableAccumulator acc;
        for (const double x : xs) acc.add(x);
        const double acc_err = std::abs(
            static_cast<double>(static_cast<long double>(acc.value()) - ref));
        // Neumaier: |err| <= 2 eps |sum| + O(n eps^2) sum|x|.
        EXPECT_LE(acc_err, 2.0 * eps * std::abs(static_cast<double>(ref)) +
                               static_cast<double>(n) * eps * eps * sum_abs)
            << "n=" << n;
    }
}

TEST(StableSum, BeatsNaiveLeftFoldOnLongConstantStreams) {
    // 100k copies of 0.1 (not representable in binary): the naive fold
    // accumulates rounding error linearly, the pairwise tree
    // logarithmically. Both are compared against the long-double truth.
    const std::size_t n = 100000;
    const std::vector<double> xs(n, 0.1);
    long double ref = 0.0L;
    double naive = 0.0;
    for (const double x : xs) {
        ref += static_cast<long double>(x);
        naive += x;
    }
    const double stable = stable_sum(std::span<const double>(xs));
    const long double naive_err = std::abs(static_cast<long double>(naive) - ref);
    const long double stable_err =
        std::abs(static_cast<long double>(stable) - ref);
    EXPECT_LT(stable_err, naive_err);

    StableAccumulator acc;
    for (const double x : xs) acc.add(x);
    const long double acc_err =
        std::abs(static_cast<long double>(acc.value()) - ref);
    EXPECT_LE(acc_err, stable_err);
}

TEST(StableSum, HandlesDegenerateSpans) {
    EXPECT_EQ(stable_sum(std::span<const double>()), 0.0);
    const std::vector<double> one = {3.25};
    EXPECT_EQ(stable_sum(std::span<const double>(one)), 3.25);
    const std::vector<double> leaf = {1.0, 2.0, 3.0, 4.0};  // below kLeaf
    EXPECT_EQ(stable_sum(std::span<const double>(leaf)), 10.0);
}

// --- pinned migrated reductions ---------------------------------------------

/// bench_micro's deterministic input generator, replicated byte-for-byte
/// (same Rng stream, same fill order) so the pins below correspond to the
/// blessed BENCH_micro work_profile points.
Matrix gaussian_cloud(std::size_t n, std::size_t d, std::uint64_t seed) {
    htd::rng::Rng rng(seed);
    Matrix data(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) data(r, c) = rng.normal();
    return data;
}

class WorkProfilePinTest : public ::testing::Test {
protected:
    void SetUp() override {
        auto& registry = htd::obs::Registry::global();
        registry.configure(htd::obs::SinkKind::kJson);
        registry.reset();
    }
    void TearDown() override {
        auto& registry = htd::obs::Registry::global();
        registry.configure(htd::obs::SinkKind::kOff);
        registry.reset();
    }
    static double work(const std::string& name) {
        const auto works = htd::obs::Registry::global().works();
        const auto it = works.find(name);
        return it == works.end() ? -1.0 : it->second;
    }
};

TEST_F(WorkProfilePinTest, AdaptiveKdeBuildReproducesPinnedProfile) {
    // work_profile's AdaptiveKdeBuild points: gaussian_cloud(n, 6, 1),
    // pilot bandwidth 0.5. The kernel-eval count is structural (pinned
    // exactly); the pilot geometric mean flows through the migrated
    // StableAccumulator log-sum, pinned bit-for-bit.
    const struct {
        std::size_t n;
        double kernel_evals;
        double pilot_g;
    } kCases[] = {
        {50, 2500.0, 0x1.0f57c245a96bep-11},
        {100, 10000.0, 0x1.da138e0bf5c37p-12},
        {200, 40000.0, 0x1.adbf16102a0ep-12},
    };
    for (const auto& c : kCases) {
        htd::obs::Registry::global().reset();
        const htd::stats::AdaptiveKde kde(gaussian_cloud(c.n, 6, 1), 0.5);
        EXPECT_EQ(work("work.kde.kernel_evals"), c.kernel_evals)
            << "n=" << c.n;
        EXPECT_EQ(kde.pilot_geometric_mean(), c.pilot_g) << "n=" << c.n;
    }
}

TEST_F(WorkProfilePinTest, OneClassSvmFitReproducesPinnedProfile) {
    // work_profile's OneClassSvmFit points: gaussian_cloud(n, 6, 4). The
    // Gram-cell count is structural; the SMO iteration count is the
    // sensitive pin — it moves if the Gram values (now reduced through
    // StableAccumulator) change at all.
    const struct {
        std::size_t n;
        double gram_cells;
        double smo_iterations;
    } kCases[] = {
        {100, 10000.0, 29.0},
        {500, 250000.0, 39.0},
    };
    for (const auto& c : kCases) {
        htd::obs::Registry::global().reset();
        htd::ml::OneClassSvm svm;
        svm.fit(gaussian_cloud(c.n, 6, 4));
        EXPECT_EQ(work("work.svm.gram_cells"), c.gram_cells) << "n=" << c.n;
        EXPECT_EQ(work("work.svm.smo_iterations"), c.smo_iterations)
            << "n=" << c.n;
    }
}

TEST_F(WorkProfilePinTest, KmmSolveReproducesPinnedProfile) {
    // work_profile's KmmSolve points: train = gaussian_cloud(n, 1, 7),
    // test = gaussian_cloud(n, 1, 8) + 1.0. The kappa vector is the
    // migrated Gram reduction; beta[0] pins the full QP solution
    // bit-for-bit on top of the structural cell counts.
    const struct {
        std::size_t n;
        double gram_cells;
        double beta0;
    } kCases[] = {
        {100, 20000.0, 0x1.296e8a7425032p+1},
        {200, 80000.0, 0x1.1056479fe4ab6p+1},
    };
    for (const auto& c : kCases) {
        htd::obs::Registry::global().reset();
        const Matrix train = gaussian_cloud(c.n, 1, 7);
        Matrix test = gaussian_cloud(c.n, 1, 8);
        for (std::size_t r = 0; r < test.rows(); ++r) test(r, 0) += 1.0;
        const htd::ml::KernelMeanMatching kmm;
        const Vector beta = kmm.solve(train, test);
        ASSERT_EQ(beta.size(), c.n);
        EXPECT_EQ(work("work.kmm.gram_cells"), c.gram_cells) << "n=" << c.n;
        EXPECT_EQ(beta[0], c.beta0) << "n=" << c.n;
    }
}

}  // namespace
