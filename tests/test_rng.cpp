/// Tests for the deterministic random-number substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;
using htd::rng::MultivariateNormal;
using htd::rng::Rng;
using htd::rng::SplitMix64;

TEST(SplitMix64, DeterministicForSeed) {
    SplitMix64 a(123);
    SplitMix64 b(123);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(2);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 5.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 5.0);
    }
    EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversAllValues) {
    Rng rng(4);
    std::set<std::size_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(5);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
    Rng rng(6);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
    EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
    Rng rng(7);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
    EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(8);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
    EXPECT_FALSE(Rng(1).bernoulli(0.0));
    EXPECT_TRUE(Rng(1).bernoulli(1.0));
}

TEST(Rng, SplitProducesDifferentStream) {
    Rng a(9);
    Rng child = a.split();
    bool any_diff = false;
    for (int i = 0; i < 20; ++i) {
        if (a.next_u64() != child.next_u64()) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, PermutationIsValid) {
    Rng rng(10);
    const auto p = rng.permutation(50);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationShuffles) {
    Rng rng(11);
    const auto p = rng.permutation(100);
    std::size_t fixed = 0;
    for (std::size_t i = 0; i < 100; ++i) {
        if (p[i] == i) ++fixed;
    }
    EXPECT_LT(fixed, 20u);  // a uniform shuffle has ~1 fixed point on average
}

TEST(Rng, WeightedIndexMatchesWeights) {
    Rng rng(12);
    const double w[] = {1.0, 3.0, 0.0, 6.0};
    std::array<int, 4> counts{};
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
    Rng rng(13);
    EXPECT_THROW((void)rng.weighted_index({}), std::invalid_argument);
    const double neg[] = {1.0, -1.0};
    EXPECT_THROW((void)rng.weighted_index(neg), std::invalid_argument);
    const double zeros[] = {0.0, 0.0};
    EXPECT_THROW((void)rng.weighted_index(zeros), std::invalid_argument);
}

// --- MultivariateNormal ---------------------------------------------------------

TEST(MultivariateNormal, ShapeMismatchThrows) {
    EXPECT_THROW(MultivariateNormal(Vector(2), Matrix(3, 3)), std::invalid_argument);
}

TEST(MultivariateNormal, SampleMeanAndCovarianceMatch) {
    const Vector mean{1.0, -2.0};
    const Matrix cov{{2.0, 0.8}, {0.8, 1.0}};
    const MultivariateNormal mvn(mean, cov);
    Rng rng(14);
    const Matrix samples = mvn.sample_n(rng, 50000);

    const Vector m = htd::stats::column_means(samples);
    EXPECT_NEAR(m[0], 1.0, 0.03);
    EXPECT_NEAR(m[1], -2.0, 0.03);

    const Matrix c = htd::stats::covariance_matrix(samples);
    EXPECT_NEAR(c(0, 0), 2.0, 0.06);
    EXPECT_NEAR(c(0, 1), 0.8, 0.04);
    EXPECT_NEAR(c(1, 1), 1.0, 0.03);
}

TEST(MultivariateNormal, HandlesSemiDefiniteCovariance) {
    // Rank-1 covariance: samples lie on a line.
    const Matrix cov{{1.0, 1.0}, {1.0, 1.0}};
    const MultivariateNormal mvn(Vector(2), cov);
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        const Vector x = mvn.sample(rng);
        EXPECT_NEAR(x[0], x[1], 1e-4);
    }
}

/// Property: dimension sweep — samples have the right dimension and finite
/// values for identity covariance.
class MvnDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MvnDims, SamplesAreFiniteAndRightSize) {
    const std::size_t d = GetParam();
    const MultivariateNormal mvn(Vector(d), Matrix::identity(d));
    Rng rng(16);
    const Vector x = mvn.sample(rng);
    ASSERT_EQ(x.size(), d);
    for (std::size_t i = 0; i < d; ++i) EXPECT_TRUE(std::isfinite(x[i]));
}

INSTANTIATE_TEST_SUITE_P(Dims, MvnDims, ::testing::Values(1, 2, 3, 6, 8, 17));

}  // namespace
