/// Tests for the Perfetto/chrome://tracing trace exporter
/// (src/obs/trace_export.hpp): document shape, span-tree fidelity
/// (ids/parents/threads), Euler-tour tick normalization and its
/// byte-identity guarantee, resource-attr scrubbing, and the
/// HTD_OBS_TRACE-configured write path. Every generated trace is also run
/// through htd_profile's check_trace so the exporter and the validator
/// cannot drift apart.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "profile.hpp"

namespace {

using htd::io::Json;
using htd::obs::Registry;
using htd::obs::ScopedSpan;
using htd::obs::SinkKind;

class TraceExportTest : public ::testing::Test {
protected:
    void SetUp() override {
        Registry::global().configure(SinkKind::kJson);
        Registry::global().reset();
    }
    void TearDown() override {
        Registry::global().set_trace_path("");
        Registry::global().set_trace_normalize(false);
        Registry::global().configure(SinkKind::kOff);
        Registry::global().reset();
    }
};

/// The "X" span events of a trace document, in emission order.
std::vector<Json> span_events(const Json& doc) {
    std::vector<Json> events;
    for (const Json& event : doc.at("traceEvents").elements()) {
        if (event.at("ph").str() == "X") events.push_back(event);
    }
    return events;
}

const Json& event_named(const std::vector<Json>& events, const std::string& name) {
    for (const Json& event : events) {
        if (event.at("name").str() == name) return event;
    }
    throw std::runtime_error("no span event named " + name);
}

TEST_F(TraceExportTest, EmptyRegistryExportsValidSkeleton) {
    const Json doc = htd::obs::trace_events_json(Registry::global());
    EXPECT_EQ(doc.at("otherData").at("schema").str(), htd::obs::kTraceSchema);
    EXPECT_EQ(doc.at("otherData").at("span_count").number(), 0.0);
    EXPECT_TRUE(span_events(doc).empty());

    const htd::profile::TraceCheck check = htd::profile::check_trace(doc);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
    EXPECT_EQ(check.span_events, 0u);
}

TEST_F(TraceExportTest, SpanTreeSerializesWithIdsParentsAndAttrs) {
    {
        ScopedSpan outer("test.outer");
        outer.attr("observations", 7.0);
        { ScopedSpan inner("test.inner"); }
    }
    { ScopedSpan sibling("test.sibling"); }
    Registry::global().work_add("work.test.units", 42.0);

    const Json doc = htd::obs::trace_events_json(Registry::global());
    const std::vector<Json> events = span_events(doc);
    ASSERT_EQ(events.size(), 3u);

    const Json& outer = event_named(events, "test.outer");
    const Json& inner = event_named(events, "test.inner");
    EXPECT_EQ(inner.at("args").at("parent").number(),
              outer.at("args").at("id").number());
    EXPECT_EQ(outer.at("args").at("parent").number(), 0.0);
    EXPECT_EQ(outer.at("args").at("observations").number(), 7.0);
    EXPECT_EQ(inner.at("args").at("depth").number(),
              outer.at("args").at("depth").number() + 1.0);
    // Raw (non-normalized) mode keeps the measured cpu time.
    EXPECT_TRUE(outer.at("args").contains("cpu_ns"));

    EXPECT_EQ(doc.at("otherData").at("work").at("work.test.units").number(), 42.0);

    const htd::profile::TraceCheck check = htd::profile::check_trace(doc);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
    EXPECT_EQ(check.span_events, 3u);
    EXPECT_EQ(check.work.at("work.test.units"), 42.0);
}

TEST_F(TraceExportTest, NormalizedTicksAreAnEulerTour) {
    {
        ScopedSpan root("test.root");
        { ScopedSpan first("test.first"); }
        { ScopedSpan second("test.second"); }
    }
    const Json doc = htd::obs::trace_events_json(Registry::global(),
                                                 /*normalize=*/true);
    const std::vector<Json> events = span_events(doc);
    ASSERT_EQ(events.size(), 3u);
    const Json& root = event_named(events, "test.root");
    const Json& first = event_named(events, "test.first");
    const Json& second = event_named(events, "test.second");

    // DFS over {root -> first, second}: enter/exit ticks 0..5.
    EXPECT_EQ(root.at("ts").number(), 0.0);
    EXPECT_EQ(root.at("dur").number(), 5.0);
    EXPECT_EQ(first.at("ts").number(), 1.0);
    EXPECT_EQ(first.at("dur").number(), 1.0);
    EXPECT_EQ(second.at("ts").number(), 3.0);
    EXPECT_EQ(second.at("dur").number(), 1.0);

    // Children nest strictly inside the parent interval — the property
    // Perfetto's flame view needs.
    for (const Json* child : {&first, &second}) {
        EXPECT_GT(child->at("ts").number(), root.at("ts").number());
        EXPECT_LT(child->at("ts").number() + child->at("dur").number(),
                  root.at("ts").number() + root.at("dur").number());
    }
    EXPECT_TRUE(doc.at("otherData").at("normalized").boolean());
}

TEST_F(TraceExportTest, NormalizedExportIsByteIdentical) {
    const auto record_run = [] {
        Registry::global().reset();
        {
            ScopedSpan root("test.pipeline");
            root.attr("devices", 36.0);
            { ScopedSpan stage("test.stage_a"); }
            { ScopedSpan stage("test.stage_b"); }
        }
        Registry::global().work_add("work.test.kernel_evals", 40000.0);
        return htd::obs::trace_events_json(Registry::global(),
                                           /*normalize=*/true)
            .dump(1);
    };
    const std::string first = record_run();
    const std::string second = record_run();
    EXPECT_EQ(first, second);
}

TEST_F(TraceExportTest, NormalizeDropsWallClockAndResourceAttrs) {
    {
        ScopedSpan span("test.resourceful");
        span.attr("mem.peak_rss_delta_bytes", 4096.0);
        span.attr("mem.allocs", 12.0);
        span.attr("observations", 3.0);
    }
    const Json raw = htd::obs::trace_events_json(Registry::global());
    const std::vector<Json> raw_events = span_events(raw);
    const Json& raw_args = event_named(raw_events, "test.resourceful").at("args");
    EXPECT_TRUE(raw_args.contains("mem.peak_rss_delta_bytes"));
    EXPECT_TRUE(raw_args.contains("cpu_ns"));

    const Json norm = htd::obs::trace_events_json(Registry::global(),
                                                  /*normalize=*/true);
    const std::vector<Json> norm_events = span_events(norm);
    const Json& norm_args =
        event_named(norm_events, "test.resourceful").at("args");
    EXPECT_FALSE(norm_args.contains("mem.peak_rss_delta_bytes"));
    EXPECT_FALSE(norm_args.contains("mem.allocs"));
    EXPECT_FALSE(norm_args.contains("cpu_ns"));
    // Non-resource attrs survive normalization — they are part of the
    // deterministic span payload.
    EXPECT_EQ(norm_args.at("observations").number(), 3.0);
}

TEST_F(TraceExportTest, ThreadsGetDistinctTracksAndMetadata) {
    { ScopedSpan main_span("test.on_main"); }
    std::thread worker([] { ScopedSpan span("test.on_worker"); });
    worker.join();

    const Json doc = htd::obs::trace_events_json(Registry::global());
    const std::vector<Json> events = span_events(doc);
    const double main_tid = event_named(events, "test.on_main").at("tid").number();
    const double worker_tid =
        event_named(events, "test.on_worker").at("tid").number();
    EXPECT_GT(main_tid, 0.0);
    EXPECT_GT(worker_tid, 0.0);
    EXPECT_NE(main_tid, worker_tid);

    // Every tid that carries spans also gets a thread_name metadata event.
    std::map<double, std::string> thread_names;
    for (const Json& event : doc.at("traceEvents").elements()) {
        if (event.at("ph").str() == "M" &&
            event.at("name").str() == "thread_name") {
            thread_names[event.at("tid").number()] =
                event.at("args").at("name").str();
        }
    }
    ASSERT_EQ(thread_names.count(main_tid), 1u);
    ASSERT_EQ(thread_names.count(worker_tid), 1u);
    EXPECT_NE(thread_names[main_tid], thread_names[worker_tid]);

    const htd::profile::TraceCheck check = htd::profile::check_trace(doc);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors.front());
}

TEST_F(TraceExportTest, WriteTraceIfConfiguredHonorsTracePath) {
    EXPECT_TRUE(htd::obs::write_trace_if_configured().empty());

    const std::string path =
        (std::filesystem::temp_directory_path() / "htd_test_trace.json").string();
    Registry::global().set_trace_path(path);
    Registry::global().set_trace_normalize(true);
    { ScopedSpan span("test.configured"); }

    const std::string written = htd::obs::write_trace_if_configured();
    EXPECT_EQ(written, path);
    const Json doc = Json::parse_file(path);
    EXPECT_EQ(doc.at("otherData").at("schema").str(), htd::obs::kTraceSchema);
    EXPECT_TRUE(doc.at("otherData").at("normalized").boolean());
    EXPECT_EQ(event_named(span_events(doc), "test.configured").at("name").str(),
              "test.configured");
    std::remove(path.c_str());
}

}  // namespace
