/// Tests for CSV IO and the text-table renderer.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "io/table.hpp"

namespace {

using htd::io::csv_line;
using htd::io::read_csv;
using htd::io::Table;
using htd::io::write_csv;
using htd::linalg::Matrix;

class CsvTest : public ::testing::Test {
protected:
    std::string path_ = (std::filesystem::temp_directory_path() /
                         ("htd_csv_test_" + std::to_string(::getpid()) + ".csv"))
                            .string();
    void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvTest, RoundTripWithoutHeader) {
    const Matrix data{{1.5, -2.0}, {3.25, 4.0}};
    write_csv(path_, data);
    const Matrix back = read_csv(path_);
    EXPECT_EQ(back, data);
}

TEST_F(CsvTest, RoundTripWithHeader) {
    const Matrix data{{1.0, 2.0}};
    write_csv(path_, data, {"a", "b"});
    const Matrix back = read_csv(path_, /*has_header=*/true);
    EXPECT_EQ(back, data);
}

TEST_F(CsvTest, HeaderWidthMismatchThrows) {
    EXPECT_THROW(write_csv(path_, Matrix(1, 2), {"only_one"}), std::invalid_argument);
}

TEST_F(CsvTest, PrecisionPreserved) {
    const Matrix data{{0.123456789012}};
    write_csv(path_, data);
    const Matrix back = read_csv(path_);
    EXPECT_NEAR(back(0, 0), 0.123456789012, 1e-12);
}

TEST_F(CsvTest, UnparsableCellThrows) {
    std::ofstream(path_) << "1.0,abc\n";
    EXPECT_THROW((void)read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, RaggedRowsThrow) {
    std::ofstream(path_) << "1.0,2.0\n3.0\n";
    EXPECT_THROW((void)read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, ErrorsNameLineAndColumn) {
    std::ofstream(path_) << "1.0,2.0\n3.0,oops\n";
    try {
        (void)read_csv(path_);
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("column 2"), std::string::npos) << msg;
    }
    std::ofstream(path_, std::ios::trunc) << "1.0,2.0\n3.0,4.0,5.0\n";
    try {
        (void)read_csv(path_);
        FAIL() << "expected ragged-row error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("expected 2"), std::string::npos) << msg;
    }
}

TEST_F(CsvTest, RejectsNonFiniteValues) {
    std::ofstream(path_) << "1.0,nan\n";
    EXPECT_THROW((void)read_csv(path_), std::runtime_error);
    std::ofstream(path_, std::ios::trunc) << "inf,2.0\n";
    EXPECT_THROW((void)read_csv(path_), std::runtime_error);
    std::ofstream(path_, std::ios::trunc) << "1e9999,2.0\n";  // overflows to inf
    EXPECT_THROW((void)read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, RejectsTrailingGarbageButNotWhitespace) {
    std::ofstream(path_) << "1.5x,2.0\n";
    EXPECT_THROW((void)read_csv(path_), std::runtime_error);
    std::ofstream(path_, std::ios::trunc) << "1.5 ,2.0\r\n3.0,4.0\n";
    const Matrix back = read_csv(path_);
    EXPECT_EQ(back, (Matrix{{1.5, 2.0}, {3.0, 4.0}}));
}

TEST(CsvLine, QuotesSpecialFields) {
    EXPECT_EQ(csv_line({"a", "b"}), "a,b");
    EXPECT_EQ(csv_line({"a,b", "c"}), "\"a,b\",c");
    EXPECT_EQ(csv_line({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(CsvRead, MissingFileThrows) {
    EXPECT_THROW((void)read_csv("/nonexistent/path/file.csv"), std::runtime_error);
}

// --- Table -----------------------------------------------------------------------

TEST(TableTest, RejectsEmptyHeaderAndBadRows) {
    EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only_one"}), std::invalid_argument);
}

TEST(TableTest, RendersAlignedColumns) {
    Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer_name", "2"});
    const std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer_name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    // Each line ends where the widest row dictates: the header line and the
    // data lines have consistent column starts.
    const auto first_line_end = out.find('\n');
    ASSERT_NE(first_line_end, std::string::npos);
}

TEST(Fmt, FixedPrecision) {
    EXPECT_EQ(htd::io::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(htd::io::fmt(2.0, 0), "2");
    EXPECT_EQ(htd::io::fmt_ratio(3, 40), "3/40");
}

}  // namespace
