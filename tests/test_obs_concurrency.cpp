/// Multi-threaded stress tests for the htd::obs concurrency surface: N
/// writer threads hammer counters / gauges / histograms / nested spans
/// while a reader thread snapshots continuously, and HealthMonitor takes
/// concurrent record() / find() / verdict() traffic. The assertions check
/// totals (every write landed exactly once); the real teeth are the
/// `tsan` preset (scripts/check.sh tsan), under which any data race in
/// the Registry / HealthMonitor lock discipline fails these tests, and
/// Clang's `-Wthread-safety`, under which an unlocked access to guarded
/// state fails the build. See DESIGN.md §11.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"

namespace {

using htd::obs::HealthLevel;
using htd::obs::HealthMonitor;
using htd::obs::HistogramSnapshot;
using htd::obs::ProbeResult;
using htd::obs::Registry;
using htd::obs::ScopedSpan;
using htd::obs::SinkKind;

class ObsConcurrencyTest : public ::testing::Test {
protected:
    void SetUp() override {
        Registry::global().configure(SinkKind::kJson);
        Registry::global().reset();
    }
    void TearDown() override {
        Registry::global().configure(SinkKind::kOff);
        Registry::global().reset();
    }
};

constexpr std::size_t kThreads = 8;
constexpr std::size_t kIterations = 500;

TEST_F(ObsConcurrencyTest, CountersGaugesHistogramsUnderContention) {
    Registry& registry = Registry::global();
    std::atomic<bool> stop{false};

    // A reader snapshots concurrently with the writers; every snapshot must
    // be internally consistent (no torn maps, no crashes).
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::map<std::string, double> counters = registry.counters();
            for (const auto& [name, value] : counters) {
                EXPECT_FALSE(name.empty());
                EXPECT_GE(value, 0.0);
            }
            (void)registry.gauges();
            const std::map<std::string, HistogramSnapshot> hists =
                registry.histograms();
            for (const auto& [name, h] : hists) {
                std::uint64_t bucket_total = 0;
                for (const std::uint64_t c : h.counts) bucket_total += c;
                EXPECT_EQ(bucket_total, h.total) << name;
            }
        }
    });

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&registry, t] {
            const std::string own = "stress.own." + std::to_string(t);
            for (std::size_t i = 0; i < kIterations; ++i) {
                registry.counter_add("stress.shared");
                registry.counter_add(own, 2.0);
                registry.gauge_set("stress.gauge", static_cast<double>(i));
                registry.histogram_record("stress.hist",
                                          static_cast<double>(i % 97) + 0.5);
            }
        });
    }
    for (std::thread& w : writers) w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_DOUBLE_EQ(registry.counter_value("stress.shared"),
                     static_cast<double>(kThreads * kIterations));
    for (std::size_t t = 0; t < kThreads; ++t) {
        EXPECT_DOUBLE_EQ(
            registry.counter_value("stress.own." + std::to_string(t)),
            2.0 * static_cast<double>(kIterations));
    }
    const std::map<std::string, HistogramSnapshot> hists = registry.histograms();
    const auto it = hists.find("stress.hist");
    ASSERT_NE(it, hists.end());
    EXPECT_EQ(it->second.total, kThreads * kIterations);
}

TEST_F(ObsConcurrencyTest, NestedSpansAcrossThreads) {
    Registry& registry = Registry::global();
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            // span_count / spans must stay coherent while writers record.
            const std::size_t n = registry.span_count();
            EXPECT_LE(n, Registry::kMaxStoredSpans);
            (void)registry.spans();
        }
    });

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (std::size_t i = 0; i < kIterations / 10; ++i) {
                ScopedSpan outer("stress.outer");
                outer.attr("thread", static_cast<double>(t));
                {
                    ScopedSpan inner("stress.inner");
                    inner.attr("i", static_cast<double>(i));
                }
            }
        });
    }
    for (std::thread& w : workers) w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    // Every span landed: kThreads * iterations of outer + inner each.
    const std::size_t expected = 2 * kThreads * (kIterations / 10);
    EXPECT_EQ(registry.span_count() +
                  static_cast<std::size_t>(registry.spans_dropped()),
              expected);
    // Nesting stayed thread-local: every inner span's parent is an outer
    // span, never a span from another thread's stack.
    std::map<std::uint64_t, std::string> by_id;
    for (const auto& s : registry.spans()) by_id[s.id] = s.name;
    for (const auto& s : registry.spans()) {
        if (s.name == "stress.inner") {
            EXPECT_EQ(s.depth, 1u);
            const auto parent = by_id.find(s.parent);
            if (parent != by_id.end()) {
                EXPECT_EQ(parent->second, "stress.outer");
            }
        } else {
            EXPECT_EQ(s.depth, 0u);
        }
    }
}

TEST_F(ObsConcurrencyTest, HealthMonitorConcurrentRecordAndSnapshot) {
    HealthMonitor monitor;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            (void)monitor.verdict();
            (void)monitor.probes();
            (void)monitor.to_json();
            const std::optional<ProbeResult> probe = monitor.find("stress.0");
            if (probe.has_value()) {
                EXPECT_EQ(probe->name, "stress.0");
            }
        }
    });

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&monitor, t] {
            for (std::size_t i = 0; i < kIterations / 5; ++i) {
                ProbeResult probe;
                probe.name = "stress." + std::to_string(t);
                probe.value("iteration", static_cast<double>(i));
                if (i % 7 == 0) {
                    probe.escalate(HealthLevel::kWarn, "synthetic warn");
                }
                const ProbeResult stored = monitor.record(std::move(probe));
                EXPECT_EQ(stored.name, "stress." + std::to_string(t));
            }
        });
    }
    for (std::thread& w : writers) w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    // Same-name probes replace, so exactly one probe per thread survives.
    EXPECT_EQ(monitor.probes().size(), kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        EXPECT_TRUE(monitor.find("stress." + std::to_string(t)).has_value());
    }
}

}  // namespace
