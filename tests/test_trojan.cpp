/// Tests for the Trojan models and the attacker's key-recovery receiver —
/// the threat-model half of the platform.

#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/aes.hpp"
#include "process/variation_model.hpp"
#include "rf/uwb.hpp"
#include "rng/rng.hpp"
#include "trojan/attacker.hpp"
#include "trojan/trojan.hpp"

namespace {

using htd::crypto::Block;
using htd::process::nominal_350nm;
using htd::rf::PowerAmplifier;
using htd::rf::UwbTransmitter;
using htd::rng::Rng;
using htd::trojan::AmplitudeLeakTrojan;
using htd::trojan::BitModulation;
using htd::trojan::DesignVariant;
using htd::trojan::FrequencyLeakTrojan;
using htd::trojan::KeyRecoveryAttacker;
using htd::trojan::LeakChannel;
using htd::trojan::PulseObservation;

std::array<bool, 128> random_bits(Rng& rng) {
    std::array<bool, 128> bits{};
    for (auto& b : bits) b = rng.bernoulli(0.5);
    return bits;
}

TEST(TrojanModels, RejectBadParameters) {
    EXPECT_THROW(AmplitudeLeakTrojan(0.0), std::invalid_argument);
    EXPECT_THROW(AmplitudeLeakTrojan(0.6), std::invalid_argument);
    EXPECT_THROW(FrequencyLeakTrojan(0.0), std::invalid_argument);
    EXPECT_THROW(FrequencyLeakTrojan(1.5), std::invalid_argument);
}

TEST(TrojanModels, AmplitudeModulatesOnZeroKeyBit) {
    const AmplitudeLeakTrojan trojan(0.1);
    std::array<bool, 128> key{};
    key.fill(true);
    key[3] = false;
    const BitModulation unmodulated = trojan.modulate(0, key);
    EXPECT_DOUBLE_EQ(unmodulated.amplitude_scale, 1.0);
    EXPECT_DOUBLE_EQ(unmodulated.frequency_offset_ghz, 0.0);
    const BitModulation modulated = trojan.modulate(3, key);
    EXPECT_DOUBLE_EQ(modulated.amplitude_scale, 1.1);
    EXPECT_DOUBLE_EQ(modulated.frequency_offset_ghz, 0.0);
}

TEST(TrojanModels, FrequencyModulatesOnZeroKeyBit) {
    const FrequencyLeakTrojan trojan(0.4);
    std::array<bool, 128> key{};
    key.fill(false);
    const BitModulation mod = trojan.modulate(7, key);
    EXPECT_DOUBLE_EQ(mod.amplitude_scale, 1.0);
    EXPECT_DOUBLE_EQ(mod.frequency_offset_ghz, 0.4);
}

TEST(TrojanModels, VariantNamesAndFactory) {
    EXPECT_EQ(htd::trojan::variant_name(DesignVariant::kTrojanFree), "trojan-free");
    EXPECT_EQ(htd::trojan::variant_name(DesignVariant::kTrojanAmplitude),
              "trojan-amplitude");
    EXPECT_EQ(htd::trojan::variant_name(DesignVariant::kTrojanFrequency),
              "trojan-frequency");
    EXPECT_EQ(htd::trojan::make_trojan(DesignVariant::kTrojanFree, 0.1, 0.1), nullptr);
    const auto amp = htd::trojan::make_trojan(DesignVariant::kTrojanAmplitude, 0.1, 0.1);
    ASSERT_NE(amp, nullptr);
    EXPECT_EQ(amp->name(), "amplitude-leak");
    const auto freq =
        htd::trojan::make_trojan(DesignVariant::kTrojanFrequency, 0.1, 0.1);
    ASSERT_NE(freq, nullptr);
    EXPECT_EQ(freq->name(), "frequency-leak");
}

// --- attacker -----------------------------------------------------------------

std::vector<std::vector<PulseObservation>> capture_blocks(
    const UwbTransmitter& tx, const std::array<bool, 128>& key, Rng& rng,
    std::size_t n_blocks) {
    std::vector<std::vector<PulseObservation>> blocks;
    blocks.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
        blocks.push_back(
            tx.transmit_block(nominal_350nm(), random_bits(rng), key));
    }
    return blocks;
}

TEST(Attacker, RejectsBadInput) {
    const KeyRecoveryAttacker attacker;
    Rng rng(1);
    EXPECT_THROW((void)attacker.recover_key({}, LeakChannel::kAmplitude, rng),
                 std::invalid_argument);
    std::vector<std::vector<PulseObservation>> short_block{{PulseObservation{}}};
    EXPECT_THROW((void)attacker.recover_key(short_block, LeakChannel::kAmplitude, rng),
                 std::invalid_argument);
}

TEST(Attacker, RejectsBadOptions) {
    KeyRecoveryAttacker::Options opts;
    opts.amplitude_noise_rel = -0.1;
    EXPECT_THROW(KeyRecoveryAttacker{opts}, std::invalid_argument);
    KeyRecoveryAttacker::Options opts2;
    opts2.min_separation = 0.0;
    EXPECT_THROW(KeyRecoveryAttacker{opts2}, std::invalid_argument);
}

TEST(Attacker, RecoversKeyFromAmplitudeTrojan) {
    Rng rng(2);
    const std::array<bool, 128> key = random_bits(rng);
    const AmplitudeLeakTrojan trojan(0.1);
    const UwbTransmitter tx{PowerAmplifier{}, &trojan};
    const auto blocks = capture_blocks(tx, key, rng, 16);
    const KeyRecoveryAttacker attacker;
    const auto result = attacker.recover_key(blocks, LeakChannel::kAmplitude, rng);
    EXPECT_GE(result.separation, attacker.options().min_separation);
    // With 16 blocks every position was almost surely observed at least once.
    EXPECT_GE(result.observed_positions, 120u);
    EXPECT_LE(result.bit_errors(key), 2u);
}

TEST(Attacker, RecoversKeyFromFrequencyTrojan) {
    Rng rng(3);
    const std::array<bool, 128> key = random_bits(rng);
    const FrequencyLeakTrojan trojan(0.4);
    const UwbTransmitter tx{PowerAmplifier{}, &trojan};
    const auto blocks = capture_blocks(tx, key, rng, 16);
    const KeyRecoveryAttacker attacker;
    const auto result = attacker.recover_key(blocks, LeakChannel::kFrequency, rng);
    EXPECT_LE(result.bit_errors(key), 2u);
}

TEST(Attacker, TrojanFreeDeviceLeaksNothing) {
    Rng rng(4);
    const std::array<bool, 128> key = random_bits(rng);
    const UwbTransmitter tx{PowerAmplifier{}};  // no Trojan
    const auto blocks = capture_blocks(tx, key, rng, 16);
    const KeyRecoveryAttacker attacker;
    const auto result = attacker.recover_key(blocks, LeakChannel::kAmplitude, rng);
    // No two-level structure: the receiver falls back to all-ones.
    EXPECT_LT(result.separation, attacker.options().min_separation);
    std::size_t ones = 0;
    for (bool b : result.key_bits) ones += b ? 1 : 0;
    EXPECT_EQ(ones, 128u);
}

TEST(Attacker, MoreBlocksImproveRecovery) {
    Rng rng(5);
    const std::array<bool, 128> key = random_bits(rng);
    const AmplitudeLeakTrojan trojan(0.05);  // weak leak
    const UwbTransmitter tx{PowerAmplifier{}, &trojan};
    KeyRecoveryAttacker::Options noisy;
    noisy.amplitude_noise_rel = 0.02;
    const KeyRecoveryAttacker attacker(noisy);

    const auto few = capture_blocks(tx, key, rng, 2);
    const auto many = capture_blocks(tx, key, rng, 64);
    const auto r_few = attacker.recover_key(few, LeakChannel::kAmplitude, rng);
    const auto r_many = attacker.recover_key(many, LeakChannel::kAmplitude, rng);
    EXPECT_LE(r_many.bit_errors(key), r_few.bit_errors(key) + 2);
    EXPECT_LE(r_many.bit_errors(key), 6u);
}

TEST(Attacker, BitErrorsCountsCorrectly) {
    htd::trojan::KeyRecoveryResult result;
    result.key_bits.fill(true);
    std::array<bool, 128> truth{};
    truth.fill(true);
    truth[0] = false;
    truth[64] = false;
    EXPECT_EQ(result.bit_errors(truth), 2u);
}

TEST(Attacker, WorksWithRealAesKeySchedule) {
    // End-to-end: the attacker recovers the actual AES key bits of the chip,
    // demonstrating the complete leak (the Trojans of [12]).
    Rng rng(6);
    Block aes_key{};
    for (auto& b : aes_key) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    const auto key_bits = htd::crypto::block_to_bits(aes_key);

    const AmplitudeLeakTrojan trojan(0.1);
    const UwbTransmitter tx{PowerAmplifier{}, &trojan};
    const htd::crypto::Aes aes(aes_key);
    std::vector<std::vector<PulseObservation>> blocks;
    for (int b = 0; b < 20; ++b) {
        Block pt{};
        for (auto& byte : pt) byte = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
        const auto ct_bits = htd::crypto::block_to_bits(aes.encrypt(pt));
        blocks.push_back(tx.transmit_block(nominal_350nm(), ct_bits, key_bits));
    }
    const KeyRecoveryAttacker attacker;
    const auto result = attacker.recover_key(blocks, LeakChannel::kAmplitude, rng);
    const auto recovered = htd::crypto::bits_to_block(result.key_bits);
    EXPECT_LE(result.bit_errors(key_bits), 1u);
    if (result.bit_errors(key_bits) == 0) {
        EXPECT_EQ(recovered, aes_key);
    }
}

}  // namespace
