/// End-to-end integration tests: a reduced-size replica of the paper's
/// experiment must reproduce the *qualitative* Table-1 shape, and the full
/// default experiment must reproduce the quantitative one. These are the
/// repository's acceptance tests.

#include <gtest/gtest.h>

#include "pipeline/experiment.hpp"
#include "pipeline/report.hpp"

namespace {

using htd::core::ExperimentConfig;
using htd::core::ExperimentResult;
using htd::core::run_experiment;

/// Reduced-size experiment so the whole file stays fast.
ExperimentConfig fast_config(std::uint64_t seed = 0xfeedULL) {
    ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.pipeline.synthetic_samples = 20000;
    return cfg;
}

TEST(Integration, DefaultExperimentReproducesTable1Shape) {
    const ExperimentResult r = run_experiment(ExperimentConfig{});

    // FP = 0/80 for every boundary (no Trojan-infested device inside any
    // trusted region) — the paper's headline security property.
    for (const auto& m : r.table1) {
        EXPECT_EQ(m.false_positives, 0u) << "boundary leaked Trojan devices";
        EXPECT_EQ(m.trojan_infested_total, 80u);
        EXPECT_EQ(m.trojan_free_total, 40u);
    }

    // B1/B2 are useless (process shift): every Trojan-free device rejected.
    EXPECT_EQ(r.table1[0].false_negatives, 40u);
    EXPECT_EQ(r.table1[1].false_negatives, 40u);

    // B3 partial, B4 at least as good, B5 close to the golden baseline —
    // the paper's monotone improvement.
    EXPECT_LT(r.table1[2].false_negatives, 40u);
    EXPECT_LE(r.table1[3].false_negatives, r.table1[2].false_negatives);
    EXPECT_LE(r.table1[4].false_negatives, r.table1[3].false_negatives);
    EXPECT_LE(r.table1[4].false_negatives, 10u);

    // Paper values: S3 24/40, S4 18/40, S5 3/40. Allow a band around them.
    EXPECT_NEAR(static_cast<double>(r.table1[2].false_negatives), 24.0, 8.0);
    EXPECT_NEAR(static_cast<double>(r.table1[3].false_negatives), 18.0, 8.0);

    // Golden-chip baseline is near-perfect, as in [12].
    EXPECT_EQ(r.golden_baseline.false_positives, 0u);
    EXPECT_LE(r.golden_baseline.false_negatives, 10u);

    // Diagnostics sane.
    EXPECT_GT(r.mars_mean_r2, 0.7);
    EXPECT_GT(r.calibration_iterations, 0u);
}

TEST(Integration, MeasuredPopulationShape) {
    const ExperimentResult r = run_experiment(fast_config());
    EXPECT_EQ(r.measured.size(), 120u);
    EXPECT_EQ(r.measured.fingerprints.cols(), 6u);
    EXPECT_EQ(r.measured.pcms.cols(), 1u);
    EXPECT_EQ(r.measured.trojan_free_indices().size(), 40u);
}

TEST(Integration, DeterministicForSeed) {
    const ExperimentResult a = run_experiment(fast_config(123));
    const ExperimentResult b = run_experiment(fast_config(123));
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a.table1[i].false_positives, b.table1[i].false_positives);
        EXPECT_EQ(a.table1[i].false_negatives, b.table1[i].false_negatives);
    }
    EXPECT_EQ(a.measured.fingerprints, b.measured.fingerprints);
}

TEST(Integration, SeedChangesPopulationNotShape) {
    const ExperimentResult r = run_experiment(fast_config(777));
    // Different lot, same qualitative result.
    EXPECT_EQ(r.table1[0].false_negatives, 40u);
    for (const auto& m : r.table1) EXPECT_LE(m.false_positives, 4u);
    EXPECT_LE(r.table1[4].false_negatives, 14u);
}

TEST(Integration, DatasetsExportedForFig4) {
    const ExperimentResult r = run_experiment(fast_config());
    EXPECT_EQ(r.datasets[0].cols(), 6u);   // S1
    EXPECT_EQ(r.datasets[4].cols(), 6u);   // S5
    EXPECT_GT(r.datasets[1].rows(), r.datasets[0].rows());  // S2 enhanced
    EXPECT_EQ(r.datasets[2].rows(), 120u);                  // S3 from DUTTs
}

TEST(Integration, SmallerChipCountStillRuns) {
    ExperimentConfig cfg = fast_config();
    cfg.n_chips = 12;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_EQ(r.measured.size(), 36u);
    EXPECT_EQ(r.table1[0].trojan_free_total, 12u);
}

TEST(Integration, WithoutKdeTailEnhancementB5DegradesToB4) {
    // Ablation hook: shrinking the KDE bandwidth to near-zero makes S5
    // essentially a resampled S4, so B5 can no longer cover the residual
    // spread much better than B4.
    ExperimentConfig cfg = fast_config();
    cfg.pipeline.kde_bandwidth = 1e-3;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_GE(r.table1[4].false_negatives + 6u, r.table1[3].false_negatives);
}

TEST(Integration, ShiftMagnitudeSweepKeepsSecurityProperty) {
    // Whatever the foundry drift magnitude, no boundary may admit more than
    // a handful of Trojan-infested devices (the FP side is the security
    // property; the FN side legitimately varies with the drift).
    for (const double shift : {2.0, 4.5, 6.0}) {
        ExperimentConfig cfg = fast_config();
        cfg.process_shift_sigma = shift;
        const ExperimentResult r = run_experiment(cfg);
        for (const auto& m : r.table1) {
            EXPECT_LE(m.false_positives, 6u) << "shift " << shift;
        }
        // The KMM/KDE stages keep helping: B5 never does worse than B3 by
        // more than a small margin.
        EXPECT_LE(r.table1[4].false_negatives, r.table1[2].false_negatives + 4u)
            << "shift " << shift;
    }
}

}  // namespace

// --- tail-model and modality variants (appended) ----------------------------------

namespace {

TEST(Integration, EvtTailModelKeepsSecurityProperty) {
    ExperimentConfig cfg = fast_config();
    cfg.pipeline.tail_model = htd::core::TailModel::kEvtPot;
    const ExperimentResult r = run_experiment(cfg);
    for (const auto& m : r.table1) {
        EXPECT_LE(m.false_positives, 6u);
    }
    // The EVT enhancer still improves on B4 or at least does not collapse.
    EXPECT_LE(r.table1[4].false_negatives, 40u);
    EXPECT_EQ(r.table1[0].false_negatives, 40u);
}

TEST(Integration, PathDelayModalityShape) {
    ExperimentConfig cfg = fast_config();
    cfg.platform.fingerprint_mode = htd::silicon::FingerprintMode::kPathDelay;
    const ExperimentResult r = run_experiment(cfg);
    for (const auto& m : r.table1) {
        EXPECT_EQ(m.false_positives, 0u);
    }
    EXPECT_EQ(r.table1[0].false_negatives, 40u);   // B1 still useless
    EXPECT_LE(r.table1[4].false_negatives, 16u);   // B5 best of the set
}

TEST(Integration, ReportSerializesEndToEnd) {
    ExperimentConfig cfg = fast_config();
    cfg.n_chips = 8;
    const ExperimentResult r = run_experiment(cfg);
    const auto doc = htd::core::experiment_report(cfg, r, true);
    const std::string text = doc.dump(2);
    EXPECT_NE(text.find("\"devices\""), std::string::npos);
    EXPECT_NE(text.find("\"fn_rate\""), std::string::npos);
}

}  // namespace
