/// \file test_journal.cpp
/// The htd.events.v1 decision-journal contract (DESIGN.md §15): typed,
/// monotonically sequenced events; crash-safe JSONL append with atomic
/// rotation and sequence resumption across reopen; normalized mode making
/// same-seed journals byte-identical; the bounded in-memory ring for
/// in-process forensics; the span cross-reference into htd.trace.v1.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "io/json.hpp"
#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"

namespace {

using namespace htd;

std::string temp_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("htd_journal_test_" + tag + "_" + std::to_string(::getpid()) +
             ".jsonl"))
        .string();
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::vector<io::Json> parse_lines(const std::string& text) {
    std::vector<io::Json> events;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) events.push_back(io::Json::parse(line));
    }
    return events;
}

/// Every test leaves the process-global journal disabled and denormalized.
class JournalTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::EventJournal::global().close();
        obs::EventJournal::global().set_normalized(false);
    }
    void TearDown() override {
        obs::EventJournal::global().close();
        obs::EventJournal::global().set_normalized(false);
    }
};

TEST_F(JournalTest, KindRegistryCoversTheDocumentedSet) {
    const std::vector<std::string>& kinds = obs::event_kinds();
    EXPECT_EQ(kinds.size(), 7u);
    for (const char* kind :
         {"calibration", "recalibration", "boundary_fallback",
          "artifact_degraded", "drift_trip", "quarantine", "chip_scored"}) {
        EXPECT_TRUE(obs::event_kind_registered(kind)) << kind;
    }
    EXPECT_FALSE(obs::event_kind_registered("chip_scoredd"));
    EXPECT_FALSE(obs::event_kind_registered(""));
}

TEST_F(JournalTest, DisabledJournalDropsEventsSilently) {
    auto& journal = obs::EventJournal::global();
    EXPECT_FALSE(journal.enabled());
    journal.append(obs::Event("chip_scored"));  // no-op, must not throw
    EXPECT_EQ(journal.recent().size(), 0u);
    EXPECT_EQ(journal.sequence(), 0u);
}

TEST_F(JournalTest, AppendWritesValidMonotonicJsonl) {
    const std::string path = temp_path("append");
    std::remove(path.c_str());
    auto& journal = obs::EventJournal::global();
    journal.open(path);
    for (int i = 0; i < 3; ++i) {
        obs::Event event("chip_scored");
        event.chip = std::to_string(i);
        event.boundary = "B5";
        event.value("decision", 0.5 - i).value("inside", i == 0 ? 1.0 : 0.0);
        journal.append(std::move(event));
    }
    journal.close();

    const std::vector<io::Json> events = parse_lines(read_file(path));
    ASSERT_EQ(events.size(), 3u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const io::Json& e = events[i];
        EXPECT_EQ(e.at("schema").str(), std::string(obs::kEventsSchema));
        EXPECT_EQ(e.at("kind").str(), "chip_scored");
        EXPECT_EQ(e.at("seq").number(), static_cast<double>(i + 1));
        EXPECT_EQ(e.at("chip").str(), std::to_string(i));
        EXPECT_EQ(e.at("boundary").str(), "B5");
        EXPECT_EQ(e.at("values").at("decision").number(),
                  0.5 - static_cast<double>(i));
    }
    std::remove(path.c_str());
}

TEST_F(JournalTest, UnregisteredKindThrowsAndWritesNothing) {
    const std::string path = temp_path("badkind");
    std::remove(path.c_str());
    auto& journal = obs::EventJournal::global();
    journal.open(path);
    EXPECT_THROW(journal.append(obs::Event("not_a_kind")),
                 std::invalid_argument);
    journal.close();
    EXPECT_TRUE(read_file(path).empty());
    std::remove(path.c_str());
}

TEST_F(JournalTest, NormalizedSameSequenceIsByteIdentical) {
    const std::string path_a = temp_path("norm_a");
    const std::string path_b = temp_path("norm_b");
    auto& journal = obs::EventJournal::global();
    journal.set_normalized(true);
    for (const std::string& path : {path_a, path_b}) {
        std::remove(path.c_str());
        journal.open(path);  // open resets the sequence per file
        obs::Event calibration("calibration");
        calibration.detail = "stage1 premanufacturing: B1/B2 trained";
        calibration.value("monte_carlo_samples", 40.0);
        journal.append(std::move(calibration));
        obs::Event scored("chip_scored");
        scored.chip = "0";
        scored.boundary = "B4";
        scored.value("decision", 0.125);
        journal.append(std::move(scored));
        journal.close();
    }
    const std::string a = read_file(path_a);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, read_file(path_b));
    // Normalized timestamps are the sequence number, not wall-clock.
    for (const io::Json& e : parse_lines(a)) {
        EXPECT_EQ(e.at("ts_ns").number(), e.at("seq").number());
    }
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST_F(JournalTest, ReopenResumesTheSequence) {
    const std::string path = temp_path("resume");
    std::remove(path.c_str());
    auto& journal = obs::EventJournal::global();
    journal.open(path);
    journal.append(obs::Event("calibration"));
    journal.append(obs::Event("chip_scored"));
    journal.close();

    // A second process (here: a second open) appending to the same journal
    // must continue after the last persisted sequence number.
    journal.open(path);
    journal.append(obs::Event("recalibration"));
    journal.close();

    const std::vector<io::Json> events = parse_lines(read_file(path));
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[2].at("seq").number(), 3.0);
    EXPECT_EQ(events[2].at("kind").str(), "recalibration");
    std::remove(path.c_str());
}

TEST_F(JournalTest, RotationKeepsTheJournalValidAndMonotone) {
    const std::string path = temp_path("rotate");
    const std::string rotated = path + ".1";
    std::remove(path.c_str());
    std::remove(rotated.c_str());
    auto& journal = obs::EventJournal::global();
    journal.open(path);
    journal.set_rotate_bytes(512);
    for (int i = 0; i < 32; ++i) {
        obs::Event event("chip_scored");
        event.chip = std::to_string(i);
        journal.append(std::move(event));
    }
    journal.close();

    ASSERT_TRUE(std::filesystem::exists(rotated));
    const std::vector<io::Json> old_events = parse_lines(read_file(rotated));
    const std::vector<io::Json> new_events = parse_lines(read_file(path));
    ASSERT_FALSE(old_events.empty());
    ASSERT_FALSE(new_events.empty());
    // Rotation keeps a single `.1` slot, so after several rotations the two
    // files retain a contiguous suffix of the sequence ending at the newest
    // record — unbroken across the rotation boundary, no torn records.
    std::uint64_t prev =
        static_cast<std::uint64_t>(old_events.front().at("seq").number()) - 1;
    for (const auto* events : {&old_events, &new_events}) {
        for (const io::Json& e : *events) {
            const auto seq = static_cast<std::uint64_t>(e.at("seq").number());
            EXPECT_EQ(seq, prev + 1);
            prev = seq;
        }
    }
    EXPECT_EQ(prev, 32u);
    std::remove(path.c_str());
    std::remove(rotated.c_str());
}

TEST_F(JournalTest, MemoryRingIsBoundedAndOldestFirst) {
    auto& journal = obs::EventJournal::global();
    journal.enable_memory();
    const std::size_t total = obs::EventJournal::kMaxRecentEvents + 40;
    for (std::size_t i = 0; i < total; ++i) {
        obs::Event event("chip_scored");
        event.chip = std::to_string(i);
        journal.append(std::move(event));
    }
    const std::vector<obs::Event> recent = journal.recent();
    ASSERT_EQ(recent.size(), obs::EventJournal::kMaxRecentEvents);
    // Oldest surviving event first, newest last.
    EXPECT_EQ(recent.front().chip, std::to_string(40));
    EXPECT_EQ(recent.back().chip, std::to_string(total - 1));
    EXPECT_EQ(recent.back().seq, total);
    journal.close();
}

TEST_F(JournalTest, EventsCrossReferenceTheEnclosingTraceSpan) {
    auto& journal = obs::EventJournal::global();
    journal.enable_memory();
    // Without tracing there is no enclosing span: id 0.
    journal.append(obs::Event("drift_trip"));
    ASSERT_EQ(journal.recent().size(), 1u);
    EXPECT_EQ(journal.recent()[0].span, 0u);

    obs::Registry::global().configure(obs::SinkKind::kJson);
    obs::Registry::global().reset();
    {
        obs::ScopedSpan span("test.journal_span");
        EXPECT_NE(obs::current_span_id(), 0u);
        journal.append(obs::Event("drift_trip"));
    }
    obs::Registry::global().configure(obs::SinkKind::kOff);
    obs::Registry::global().reset();

    const std::vector<obs::Event> recent = journal.recent();
    ASSERT_EQ(recent.size(), 2u);
    // The journal record carries the id the trace export will contain.
    EXPECT_NE(recent[1].span, 0u);
    journal.close();
}

}  // namespace
