/// \file test_explain.cpp
/// The htd.explain.v1 verdict-attribution contract (DESIGN.md §15): the
/// explanation is deterministic at fixed seed and bitwise-identical
/// between the in-process artifact and its save/load round trip; decision
/// values match the scoring path exactly; channel contributions rank by
/// |leave-one-channel-out delta|; neighbours rank by distance; KDE tail
/// percentiles live in [0, 1]. Plus the htd_explain_lib journal
/// validate/query surface and renderers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "explain_cli.hpp"
#include "io/json.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/explain.hpp"
#include "pipeline/scorer.hpp"

namespace {

using namespace htd;

/// One reduced-budget calibration for the whole suite, scored two ways:
/// straight from the in-process artifact and from its save/load round trip.
class ExplainSuite : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        core::ExperimentConfig config;
        config.n_chips = 10;
        config.pipeline.monte_carlo_samples = 40;
        config.pipeline.synthetic_samples = 3000;

        rng::Rng rng(config.seed);
        rng::Rng fab_rng = rng.split();
        const silicon::DuttDataset devices =
            core::fabricate_and_measure(config, fab_rng);
        fingerprints_ = devices.fingerprints;

        const core::ProcessPair processes =
            core::make_process_pair(config.process_shift_sigma);
        core::GoldenFreePipeline pipeline(
            config.pipeline,
            silicon::SpiceSimulator(config.platform, processes.spice));
        rng::Rng sim_rng = rng.split();
        rng::Rng pipe_rng = rng.split();
        pipeline.run_premanufacturing(sim_rng);
        pipeline.run_silicon_stage(devices.pcms, pipe_rng);

        const core::BoundaryArtifact artifact =
            core::BoundaryArtifact::from_pipeline(pipeline, config.seed,
                                                  "test_explain");
        scorer_ = std::make_unique<core::BoundaryScorer>(artifact);

        const std::string path =
            (std::filesystem::temp_directory_path() /
             ("htd_explain_test_" + std::to_string(::getpid()) + ".json"))
                .string();
        artifact.save(path);
        loaded_scorer_ = std::make_unique<core::BoundaryScorer>(
            core::BoundaryArtifact::load(path));
        std::filesystem::remove(path);
    }

    static void TearDownTestSuite() {
        scorer_.reset();
        loaded_scorer_.reset();
    }

    static std::unique_ptr<core::BoundaryScorer> scorer_;
    static std::unique_ptr<core::BoundaryScorer> loaded_scorer_;
    static linalg::Matrix fingerprints_;
};

std::unique_ptr<core::BoundaryScorer> ExplainSuite::scorer_;
std::unique_ptr<core::BoundaryScorer> ExplainSuite::loaded_scorer_;
linalg::Matrix ExplainSuite::fingerprints_;

TEST_F(ExplainSuite, RecordIsBitwiseIdenticalAcrossArtifactRoundTrip) {
    // The acceptance criterion: explain() must serialize to the same bytes
    // whether the artifact lives in memory or went through save/load.
    for (std::size_t r = 0; r < fingerprints_.rows(); ++r) {
        const std::string in_process =
            scorer_->explain(fingerprints_.row(r), std::to_string(r))
                .to_json()
                .dump();
        const std::string loaded =
            loaded_scorer_->explain(fingerprints_.row(r), std::to_string(r))
                .to_json()
                .dump();
        EXPECT_EQ(in_process, loaded) << "chip " << r;
    }
}

TEST_F(ExplainSuite, DecisionsMatchTheScoringPathExactly) {
    const core::ExplainRecord rec =
        scorer_->explain(fingerprints_.row(0), "0");
    ASSERT_EQ(rec.boundaries.size(), core::kAllBoundaries.size());
    for (const core::Boundary b : core::kAllBoundaries) {
        const core::BoundaryExplanation& be =
            rec.boundaries[static_cast<std::size_t>(b)];
        EXPECT_EQ(be.boundary, b);
        if (!be.usable) continue;
        const linalg::Vector decisions =
            scorer_->decision_values(b, fingerprints_);
        EXPECT_EQ(be.decision, decisions[0]);  // bitwise, no tolerance
        EXPECT_EQ(be.inside, decisions[0] >= 0.0);
        EXPECT_EQ(be.margin, be.decision);
    }
}

TEST_F(ExplainSuite, ChannelsRankByAbsoluteLocoDeltaAndCoverAllChannels) {
    const core::ExplainRecord rec =
        scorer_->explain(fingerprints_.row(1), "1");
    bool any_usable = false;
    for (const core::BoundaryExplanation& be : rec.boundaries) {
        if (!be.usable) continue;
        any_usable = true;
        EXPECT_EQ(be.channels.size(), fingerprints_.cols());
        for (std::size_t i = 1; i < be.channels.size(); ++i) {
            EXPECT_GE(std::abs(be.channels[i - 1].loco_delta),
                      std::abs(be.channels[i].loco_delta));
        }
        // Every channel appears exactly once.
        std::vector<bool> seen(fingerprints_.cols(), false);
        for (const core::ChannelAttribution& ca : be.channels) {
            ASSERT_LT(ca.channel, seen.size());
            EXPECT_FALSE(seen[ca.channel]);
            seen[ca.channel] = true;
            EXPECT_TRUE(std::isfinite(ca.z));
        }
    }
    EXPECT_TRUE(any_usable);
}

TEST_F(ExplainSuite, NeighborsAreNearestFirstAndTailMassIsAPercentile) {
    core::ExplainOptions opts;
    opts.neighbors = 5;
    const core::ExplainRecord rec =
        scorer_->explain(fingerprints_.row(2), "2", opts);
    for (const core::BoundaryExplanation& be : rec.boundaries) {
        if (!be.usable) continue;
        EXPECT_LE(be.neighbors.size(), opts.neighbors);
        EXPECT_GE(be.neighbors.size(), 1u);
        for (std::size_t i = 1; i < be.neighbors.size(); ++i) {
            EXPECT_LE(be.neighbors[i - 1].distance, be.neighbors[i].distance);
        }
        for (const core::NeighborRef& nb : be.neighbors) {
            EXPECT_GE(nb.distance, 0.0);
        }
    }
    for (const core::KdeTailMass* tail : {&rec.kde_s2, &rec.kde_s5}) {
        if (!tail->present) continue;
        EXPECT_GE(tail->density, 0.0);
        EXPECT_GE(tail->tail_percentile, 0.0);
        EXPECT_LE(tail->tail_percentile, 1.0);
    }
}

TEST_F(ExplainSuite, TopChannelsOptionTruncatesTheRanking) {
    core::ExplainOptions opts;
    opts.top_channels = 2;
    const core::ExplainRecord rec =
        scorer_->explain(fingerprints_.row(0), "0", opts);
    for (const core::BoundaryExplanation& be : rec.boundaries) {
        if (be.usable) {
            EXPECT_EQ(be.channels.size(), 2u);
        }
    }
}

TEST_F(ExplainSuite, FlaggedAgreesWithTheVerdictBoundaryClassification) {
    const std::optional<core::Boundary> vb = scorer_->verdict_boundary();
    ASSERT_TRUE(vb.has_value());
    const std::vector<bool> inside = scorer_->classify(*vb, fingerprints_);
    for (std::size_t r = 0; r < fingerprints_.rows(); ++r) {
        const core::ExplainRecord rec =
            scorer_->explain(fingerprints_.row(r), std::to_string(r));
        EXPECT_EQ(rec.verdict_boundary, core::boundary_name(*vb));
        EXPECT_EQ(rec.flagged, !inside[r]) << "chip " << r;
    }
}

TEST_F(ExplainSuite, NonFiniteFingerprintIsRejected) {
    linalg::Vector bad = fingerprints_.row(0);
    bad[0] = std::nan("");
    EXPECT_THROW((void)scorer_->explain(bad, "0"), core::DataQualityError);
}

TEST_F(ExplainSuite, RenderedExplanationNamesTheVerdict) {
    const io::Json doc = scorer_->explain(fingerprints_.row(0), "0").to_json();
    const std::string text = explain_cli::render_explanation(doc);
    EXPECT_NE(text.find("chip 0"), std::string::npos);
    EXPECT_NE(text.find(doc.at("verdict_boundary").str()), std::string::npos);
    EXPECT_NE(text.find("channel contributions"), std::string::npos);
    EXPECT_NE(text.find("nearest calibration neighbours"), std::string::npos);
}

// --- htd_explain_lib journal surface ----------------------------------------

std::string valid_journal() {
    return
        R"({"boundary":"","chip":"","detail":"","kind":"calibration","lot":"","schema":"htd.events.v1","seq":1,"span":0,"ts_ns":1,"values":{}})"
        "\n"
        R"({"boundary":"B4","chip":"","detail":"","kind":"boundary_fallback","lot":"","schema":"htd.events.v1","seq":2,"span":0,"ts_ns":2,"values":{"effective_sample_size":2.5}})"
        "\n"
        R"({"boundary":"B5","chip":"7","detail":"","kind":"chip_scored","lot":"","schema":"htd.events.v1","seq":3,"span":0,"ts_ns":3,"values":{"decision":-0.25,"inside":0}})"
        "\n";
}

TEST(JournalCheckText, AcceptsAValidJournal) {
    const explain_cli::JournalCheck check =
        explain_cli::check_journal_text(valid_journal());
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
    EXPECT_EQ(check.records, 3u);
    EXPECT_EQ(check.last_seq, 3u);
    EXPECT_EQ(check.kinds.at("chip_scored"), 1u);
}

TEST(JournalCheckText, RejectsMalformedSchemaSequenceAndKind) {
    const explain_cli::JournalCheck malformed =
        explain_cli::check_journal_text("{not json\n");
    EXPECT_FALSE(malformed.ok);

    const explain_cli::JournalCheck wrong_schema = explain_cli::check_journal_text(
        R"({"kind":"calibration","schema":"htd.trace.v1","seq":1})" "\n");
    EXPECT_FALSE(wrong_schema.ok);

    const explain_cli::JournalCheck bad_kind = explain_cli::check_journal_text(
        R"({"kind":"chip_zapped","schema":"htd.events.v1","seq":1})" "\n");
    EXPECT_FALSE(bad_kind.ok);
    EXPECT_NE(bad_kind.errors[0].find("chip_zapped"), std::string::npos);

    const explain_cli::JournalCheck non_monotone = explain_cli::check_journal_text(
        R"({"kind":"calibration","schema":"htd.events.v1","seq":2})" "\n"
        R"({"kind":"calibration","schema":"htd.events.v1","seq":2})" "\n");
    EXPECT_FALSE(non_monotone.ok);
    EXPECT_NE(non_monotone.errors[0].find("strictly increasing"),
              std::string::npos);
}

TEST(JournalQueryText, FiltersByChipKindAndSince) {
    const std::string text = valid_journal();
    explain_cli::JournalQuery by_chip;
    by_chip.chip = "7";
    ASSERT_EQ(explain_cli::query_journal_text(text, by_chip).size(), 1u);
    EXPECT_EQ(explain_cli::query_journal_text(text, by_chip)[0]
                  .at("kind")
                  .str(),
              "chip_scored");

    explain_cli::JournalQuery by_kind;
    by_kind.kind = "boundary_fallback";
    ASSERT_EQ(explain_cli::query_journal_text(text, by_kind).size(), 1u);

    explain_cli::JournalQuery since;
    since.since = 2;
    EXPECT_EQ(explain_cli::query_journal_text(text, since).size(), 2u);

    explain_cli::JournalQuery nothing;
    nothing.chip = "7";
    nothing.kind = "calibration";
    EXPECT_TRUE(explain_cli::query_journal_text(text, nothing).empty());
}

TEST(JournalRenderEvent, CarriesSequenceKindAndValues) {
    const std::vector<io::Json> events =
        explain_cli::query_journal_text(valid_journal(), {});
    ASSERT_EQ(events.size(), 3u);
    const std::string line = explain_cli::render_event(events[2]);
    EXPECT_NE(line.find("#3"), std::string::npos);
    EXPECT_NE(line.find("chip_scored"), std::string::npos);
    EXPECT_NE(line.find("chip=7"), std::string::npos);
    EXPECT_NE(line.find("boundary=B5"), std::string::npos);
    EXPECT_NE(line.find("decision=-0.25"), std::string::npos);
}

TEST(ExplainCliRun, HelpExitsCleanAndUnknownCommandFails) {
    const char* help[] = {"htd_explain", "--help"};
    EXPECT_EQ(explain_cli::run(2, help), explain_cli::kExitOk);
    const char* unknown[] = {"htd_explain", "frobnicate"};
    EXPECT_EQ(explain_cli::run(2, unknown), explain_cli::kExitError);
    const char* none[] = {"htd_explain"};
    EXPECT_EQ(explain_cli::run(1, none), explain_cli::kExitError);
}

}  // namespace
