/// Tests for the virtual fab, the platform config, the measurement bench and
/// the Spice simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pipeline/experiment.hpp"
#include "stats/descriptive.hpp"
#include "silicon/bench_measure.hpp"
#include "silicon/fab.hpp"
#include "silicon/platform.hpp"

namespace {

using htd::process::ProcessVariationModel;
using htd::rng::Rng;
using htd::silicon::DuttDataset;
using htd::silicon::Fab;
using htd::silicon::FabricatedLot;
using htd::silicon::MeasurementBench;
using htd::silicon::PlatformConfig;
using htd::silicon::SpiceSimulator;
using htd::trojan::DesignVariant;

TEST(Platform, PaperDefaultShape) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    EXPECT_EQ(cfg.fingerprint_dim(), 6u);  // nm = 6
    EXPECT_EQ(cfg.pcm_dim(), 1u);          // np = 1
    EXPECT_EQ(cfg.plaintext_blocks.size(), 6u);
}

TEST(Platform, SeedControlsKeyAndBlocks) {
    const PlatformConfig a = PlatformConfig::paper_default(1);
    const PlatformConfig b = PlatformConfig::paper_default(1);
    const PlatformConfig c = PlatformConfig::paper_default(2);
    EXPECT_EQ(a.aes_key, b.aes_key);
    EXPECT_NE(a.aes_key, c.aes_key);
}

TEST(Platform, CiphertextBitsMatchAes) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const auto bits = cfg.ciphertext_bits();
    ASSERT_EQ(bits.size(), 6u);
    const htd::crypto::Aes aes(cfg.aes_key);
    const auto expected =
        htd::crypto::block_to_bits(aes.encrypt(cfg.plaintext_blocks[0]));
    EXPECT_EQ(bits[0], expected);
}

TEST(Platform, RingOscillatorExtendsPcmDim) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.include_ring_oscillator = true;
    EXPECT_EQ(cfg.pcm_dim(), 2u);
}

// --- fab -------------------------------------------------------------------------

TEST(FabTest, RejectsBadOptions) {
    Fab::Options opts;
    opts.wafers = 0;
    EXPECT_THROW(Fab(ProcessVariationModel::default_350nm(), opts),
                 std::invalid_argument);
    Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(1);
    EXPECT_THROW((void)fab.fabricate_lot(rng, 0), std::invalid_argument);
}

TEST(FabTest, ThreeVersionsPerChipInOrder) {
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(2);
    const FabricatedLot lot = fab.fabricate_lot(rng, 40);
    ASSERT_EQ(lot.devices.size(), 120u);
    EXPECT_EQ(lot.chip_count(), 40u);
    for (std::size_t chip = 0; chip < 40; ++chip) {
        EXPECT_EQ(lot.devices[3 * chip].variant, DesignVariant::kTrojanFree);
        EXPECT_EQ(lot.devices[3 * chip + 1].variant, DesignVariant::kTrojanAmplitude);
        EXPECT_EQ(lot.devices[3 * chip + 2].variant, DesignVariant::kTrojanFrequency);
        EXPECT_EQ(lot.devices[3 * chip].chip_id, chip);
    }
}

TEST(FabTest, ChipCountFollowsDistinctChips) {
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(7);
    FabricatedLot lot = fab.fabricate_lot(rng, 5);
    EXPECT_EQ(lot.chip_count(), 5u);
    // A filtered lot no longer carries three versions of every chip; the
    // count must follow the distinct chip ids, not devices.size() / 3.
    lot.devices.erase(lot.devices.begin() + 1, lot.devices.begin() + 3);
    EXPECT_EQ(lot.devices.size(), 13u);
    EXPECT_EQ(lot.chip_count(), 5u);
    lot.devices.erase(lot.devices.begin());  // chip 0 fully gone
    EXPECT_EQ(lot.chip_count(), 4u);
    lot.devices.clear();
    EXPECT_EQ(lot.chip_count(), 0u);
}

TEST(FabTest, VersionsShareDieProcessClosely) {
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(3);
    const FabricatedLot lot = fab.fabricate_lot(rng, 10);
    const auto mu_idx = static_cast<std::size_t>(htd::process::Param::kMuN);
    const double full_sigma = fab.process_model().sigma()[mu_idx];
    for (std::size_t chip = 0; chip < 10; ++chip) {
        const double a = lot.devices[3 * chip].point.mu_n();
        const double b = lot.devices[3 * chip + 1].point.mu_n();
        // Versions differ by within-die mismatch only, far below full spread.
        EXPECT_LT(std::abs(a - b), full_sigma);
    }
}

TEST(FabTest, WaferAssignmentCoversConfiguredWafers) {
    Fab::Options opts;
    opts.wafers = 4;
    const Fab fab(ProcessVariationModel::default_350nm(), opts);
    Rng rng(4);
    const FabricatedLot lot = fab.fabricate_lot(rng, 20);
    EXPECT_EQ(lot.wafer_offsets.size(), 4u);
    std::size_t max_wafer = 0;
    for (const auto& d : lot.devices) max_wafer = std::max(max_wafer, d.wafer_id);
    EXPECT_EQ(max_wafer, 3u);
}

TEST(FabTest, LotsDifferAcrossRuns) {
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(5);
    const FabricatedLot a = fab.fabricate_lot(rng, 5);
    const FabricatedLot b = fab.fabricate_lot(rng, 5);
    EXPECT_NE(a.devices[0].point, b.devices[0].point);
}

// --- bench -----------------------------------------------------------------------

TEST(Bench, RejectsEmptyPlatform) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.plaintext_blocks.clear();
    EXPECT_THROW(MeasurementBench{cfg}, std::invalid_argument);
}

TEST(Bench, MeasurementShapes) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(6);
    const FabricatedLot lot = fab.fabricate_lot(rng, 4);
    const DuttDataset ds = bench.measure_lot(lot, rng);
    EXPECT_EQ(ds.size(), 12u);
    EXPECT_EQ(ds.fingerprints.rows(), 12u);
    EXPECT_EQ(ds.fingerprints.cols(), 6u);
    EXPECT_EQ(ds.pcms.rows(), 12u);
    EXPECT_EQ(ds.pcms.cols(), 1u);
}

TEST(Bench, LabelsMatchVariants) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(7);
    const DuttDataset ds = bench.measure_lot(fab.fabricate_lot(rng, 3), rng);
    const auto labels = ds.labels();
    ASSERT_EQ(labels.size(), 9u);
    EXPECT_EQ(labels[0], htd::ml::DeviceLabel::kTrojanFree);
    EXPECT_EQ(labels[1], htd::ml::DeviceLabel::kTrojanInfested);
    EXPECT_EQ(labels[2], htd::ml::DeviceLabel::kTrojanInfested);
    EXPECT_EQ(ds.trojan_free_indices(), (std::vector<std::size_t>{0, 3, 6}));
}

TEST(Bench, AmplitudeTrojanRaisesMeasuredPower) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(8);
    const FabricatedLot lot = fab.fabricate_lot(rng, 20);
    double tf_sum = 0.0, amp_sum = 0.0;
    for (std::size_t chip = 0; chip < 20; ++chip) {
        tf_sum += bench.measure_fingerprint(lot.devices[3 * chip], rng).mean();
        amp_sum += bench.measure_fingerprint(lot.devices[3 * chip + 1], rng).mean();
    }
    EXPECT_GT(amp_sum / 20.0, tf_sum / 20.0 + 0.3);  // ~+1 dB expected
}

TEST(Bench, CaptureTransmissionValidatesIndex) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(9);
    const FabricatedLot lot = fab.fabricate_lot(rng, 1);
    EXPECT_EQ(bench.capture_transmission(lot.devices[0], 0).size(), 128u);
    EXPECT_THROW((void)bench.capture_transmission(lot.devices[0], 6),
                 std::out_of_range);
}

TEST(Bench, PcmNoiseIsSmallRelative) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(10);
    const FabricatedLot lot = fab.fabricate_lot(rng, 1);
    const double a = bench.measure_pcm(lot.devices[0], rng)[0];
    const double b = bench.measure_pcm(lot.devices[0], rng)[0];
    EXPECT_NE(a, b);                       // jitter present
    EXPECT_NEAR(a, b, 0.05 * a);           // but small
}

// --- spice simulator -----------------------------------------------------------------

TEST(Simulator, GoldenDataShapes) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const SpiceSimulator sim(cfg, ProcessVariationModel::default_350nm());
    Rng rng(11);
    const auto golden = sim.simulate_golden(rng, 50);
    EXPECT_EQ(golden.pcms.rows(), 50u);
    EXPECT_EQ(golden.pcms.cols(), 1u);
    EXPECT_EQ(golden.fingerprints.rows(), 50u);
    EXPECT_EQ(golden.fingerprints.cols(), 6u);
    EXPECT_THROW((void)sim.simulate_golden(rng, 0), std::invalid_argument);
}

TEST(Simulator, NoiseFreeAtFixedPoint) {
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const SpiceSimulator sim(cfg, ProcessVariationModel::default_350nm());
    const auto pp = htd::process::nominal_350nm();
    EXPECT_EQ(sim.fingerprint_at(pp), sim.fingerprint_at(pp));
    EXPECT_EQ(sim.pcm_at(pp), sim.pcm_at(pp));
}

TEST(Simulator, StaleModelShiftsPopulations) {
    // The shifted (slow) Spice model predicts slower PCMs and weaker
    // fingerprints than the actual silicon process.
    const auto pair = htd::core::make_process_pair(4.5);
    const PlatformConfig cfg = PlatformConfig::paper_default();
    const SpiceSimulator spice_sim(cfg, pair.spice);
    const SpiceSimulator silicon_sim(cfg, pair.silicon);
    Rng rng_a(12);
    Rng rng_b(12);
    const auto spice = spice_sim.simulate_golden(rng_a, 100);
    const auto silicon = silicon_sim.simulate_golden(rng_b, 100);
    EXPECT_GT(htd::stats::column_means(spice.pcms)[0],
              htd::stats::column_means(silicon.pcms)[0]);
    EXPECT_LT(htd::stats::column_means(spice.fingerprints)[0],
              htd::stats::column_means(silicon.fingerprints)[0]);
}

TEST(Simulator, FingerprintsAtReportsAllBlocks) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.include_ring_oscillator = true;
    const SpiceSimulator sim(cfg, ProcessVariationModel::default_350nm());
    const auto pp = htd::process::nominal_350nm();
    EXPECT_EQ(sim.fingerprint_at(pp).size(), 6u);
    EXPECT_EQ(sim.pcm_at(pp).size(), 2u);
}

}  // namespace

// --- fingerprint modalities (appended) -------------------------------------------

namespace {

TEST(Modality, DimensionsPerMode) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.fingerprint_mode = htd::silicon::FingerprintMode::kPathDelay;
    EXPECT_EQ(cfg.fingerprint_dim(), cfg.monitored_paths);
    cfg.fingerprint_mode = htd::silicon::FingerprintMode::kCombined;
    EXPECT_EQ(cfg.fingerprint_dim(), 6u + cfg.monitored_paths);
}

TEST(Modality, DelayFingerprintsSlowerForTrojans) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.fingerprint_mode = htd::silicon::FingerprintMode::kPathDelay;
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(21);
    const FabricatedLot lot = fab.fabricate_lot(rng, 10);
    double tf_sum = 0.0, ti_sum = 0.0;
    for (std::size_t chip = 0; chip < 10; ++chip) {
        tf_sum += bench.measure_fingerprint(lot.devices[3 * chip], rng).sum();
        ti_sum += bench.measure_fingerprint(lot.devices[3 * chip + 1], rng).sum();
    }
    EXPECT_GT(ti_sum, tf_sum);  // tap loads slow the tapped paths
}

TEST(Modality, CombinedConcatenatesBoth) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.fingerprint_mode = htd::silicon::FingerprintMode::kCombined;
    const MeasurementBench bench(cfg);
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(22);
    const FabricatedLot lot = fab.fabricate_lot(rng, 1);
    const auto fp = bench.measure_fingerprint(lot.devices[0], rng);
    ASSERT_EQ(fp.size(), 6u + cfg.monitored_paths);
    // Power entries are dBm (negative-ish); delay entries are positive ns.
    EXPECT_LT(fp[0], 5.0);
    for (std::size_t i = 6; i < fp.size(); ++i) EXPECT_GT(fp[i], 0.0);
}

TEST(Modality, SimulatorMatchesModeDimensions) {
    PlatformConfig cfg = PlatformConfig::paper_default();
    cfg.fingerprint_mode = htd::silicon::FingerprintMode::kPathDelay;
    const SpiceSimulator sim(cfg, ProcessVariationModel::default_350nm());
    EXPECT_EQ(sim.fingerprint_at(htd::process::nominal_350nm()).size(),
              cfg.monitored_paths);
}

}  // namespace

// --- wafer spatial signature (appended) --------------------------------------------

namespace {

TEST(WaferMap, SitesCoverUnitDisk) {
    const Fab fab(ProcessVariationModel::default_350nm());
    Rng rng(31);
    const FabricatedLot lot = fab.fabricate_lot(rng, 40);
    double max_r = 0.0;
    for (const auto& dev : lot.devices) {
        const double r = dev.site_radius();
        EXPECT_LE(r, 1.0 + 1e-9);
        max_r = std::max(max_r, r);
    }
    EXPECT_GT(max_r, 0.8);  // the layout reaches the wafer edge
}

TEST(WaferMap, RadialGradientSlowsEdgeChips) {
    Fab::Options opts;
    opts.radial_gradient_sigma = 1.5;  // exaggerated for a clear signal
    opts.within_die_fraction = 0.0;
    const Fab fab(ProcessVariationModel::default_350nm(), opts);
    Rng rng(32);
    const FabricatedLot lot = fab.fabricate_lot(rng, 200);
    // Regress mu_n against r^2: the configured gradient leans edge chips
    // toward the slow corner (lower mobility).
    std::vector<double> r2s, mus;
    for (std::size_t i = 0; i < lot.devices.size(); i += 3) {
        const auto& dev = lot.devices[i];
        r2s.push_back(dev.site_radius() * dev.site_radius());
        mus.push_back(dev.point.mu_n());
    }
    EXPECT_LT(htd::stats::pearson_correlation(r2s, mus), -0.3);
}

TEST(WaferMap, ZeroGradientRemovesRadialSignature) {
    Fab::Options opts;
    opts.radial_gradient_sigma = 0.0;
    opts.within_die_fraction = 0.0;
    const Fab fab(ProcessVariationModel::default_350nm(), opts);
    Rng rng(33);
    const FabricatedLot lot = fab.fabricate_lot(rng, 200);
    std::vector<double> r2s, mus;
    for (std::size_t i = 0; i < lot.devices.size(); i += 3) {
        r2s.push_back(lot.devices[i].site_radius() * lot.devices[i].site_radius());
        mus.push_back(lot.devices[i].point.mu_n());
    }
    EXPECT_NEAR(htd::stats::pearson_correlation(r2s, mus), 0.0, 0.2);
}

TEST(WaferMap, NegativeGradientRejected) {
    Fab::Options opts;
    opts.radial_gradient_sigma = -0.1;
    EXPECT_THROW(Fab(ProcessVariationModel::default_350nm(), opts),
                 std::invalid_argument);
}

}  // namespace
